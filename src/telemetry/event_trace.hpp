#pragma once

/// \file event_trace.hpp
/// \brief Bounded ring buffer of structured admission-control events.
///
/// One TraceEvent per admit / reject / release / rollback decision (plus
/// periodic kSample records from the simulator): flow id, class, endpoints,
/// the blocking hop and the observed utilization at decision time, a static
/// reject-reason string, and a nanosecond timestamp.
///
/// Writers claim a slot with one fetch_add and publish it through a
/// per-slot seqlock, so the tracer is safe to call from the concurrent
/// admission hot path; the only wait is the rare case of a writer lapped
/// by a whole ring rotation, which briefly yields the slot to the newer
/// event. The ring keeps the most recent `capacity` events: at
/// sampling = 1.0 the last `capacity` recorded events are always
/// retrievable (each of the last `capacity` sequence numbers maps to a
/// distinct slot and nothing newer has overwritten it). snapshot() taken
/// while writers are active is best-effort (slots mid-write are skipped);
/// at quiescence it is exact.
///
/// Sampling < 1.0 keeps a uniform random subset via geometric skipping:
/// the gap to the next sampled event is drawn once per hit, so a
/// sampled-out event costs one thread-local decrement — no RNG draw, no
/// shared state. sampled_out() is credited in per-thread batches at each
/// sampled event, so it can lag by up to one gap per thread.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/csv.hpp"

namespace ubac::telemetry {

enum class TraceEventKind : std::uint8_t {
  kAdmit,
  kReject,
  kRelease,
  kRollback,
  kSample,
  /// AlertEngine fire/resolve transition; `reason` names the rule and the
  /// polarity, `utilization` carries the rule's observed value.
  kAlert,
  /// ReconfigurationActuator phase marker; `reason` names the phase
  /// ("reconfig:research", "reconfig:apply", ...), `utilization` carries
  /// the alpha (or shed count) the phase produced.
  kReconfig,
  /// ConformanceMonitor verdict transition; `reason` is
  /// "conformance:violation" or "conformance:clear", `flow_id` names the
  /// flow and `utilization` carries its conformance margin.
  kConformance,
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kAdmit;
  std::uint64_t seq = 0;       ///< filled by EventTracer::record
  std::int64_t timestamp_ns = 0;
  std::uint64_t flow_id = 0;
  std::uint32_t class_index = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t blocking_hop = 0;  ///< first saturated hop (rejects)
  /// Highest per-hop class utilization observed at decision time (or the
  /// sampled quantity for kSample events).
  double utilization = 0.0;
  /// Static reject-reason string (never owned; outcome names). May be "".
  const char* reason = "";
};

class EventTracer {
 public:
  /// `capacity` is rounded up to a power of two; `sampling` in [0, 1].
  explicit EventTracer(std::size_t capacity, double sampling = 1.0);

  /// True when the event should be recorded (Bernoulli(sampling) per
  /// call, realized as geometric gaps). Callers gate event *construction*
  /// on this so sampled-out decisions pay only the thread-local decrement.
  bool should_sample() noexcept;

  /// Claims the next slot and stores `ev` (seq and, when 0, timestamp_ns
  /// are filled in). Lock-free: the only wait is a writer lapped by a
  /// full ring rotation briefly waiting out (or yielding to) the
  /// colliding writer.
  void record(TraceEvent ev) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Events written into the ring (post-sampling), total.
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Events skipped by sampling.
  std::uint64_t sampled_out() const noexcept {
    return sampled_out_.value();
  }

  /// The retained (most recent) events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  std::string to_json() const;
  void write_csv(util::CsvWriter& csv) const;

  static std::int64_t now_ns() noexcept;

 private:
  struct Slot {
    /// 2 * (seq + 1) of the event the payload holds; odd while a writer
    /// owns the slot; 0 while unwritten. The parity bit serializes the
    /// rare lapped-writer collision (see record()).
    std::atomic<std::uint64_t> stamp{0};
    TraceEvent ev;
  };

  std::size_t capacity_;
  double sampling_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  /// Striped: bumped on ~every decision when sampling is low, so a single
  /// shared cell would ping-pong across cores (measured ~17% on the
  /// 8-thread admission bench; striped it is <1%).
  Counter sampled_out_;
};

}  // namespace ubac::telemetry
