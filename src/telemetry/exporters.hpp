#pragma once

/// \file exporters.hpp
/// \brief Render a MetricsSnapshot as Prometheus text, JSON, or CSV.
///
/// All three formats carry the same values (asserted by the round-trip
/// test in tests/telemetry_test.cpp):
///
///  * Prometheus text exposition format 0.0.4 — `# HELP` / `# TYPE`
///    headers, cumulative `_bucket{le=...}` series plus `_sum` / `_count`
///    for histograms. Suitable for a scrape endpoint or a textfile
///    collector.
///  * JSON — one object per family with per-series label maps; histograms
///    keep their non-cumulative bucket counts alongside sum/count.
///  * CSV — one row per scalar series, one row per histogram bucket and
///    one each for sum/count, via util::CsvWriter.

#include <string>

#include "telemetry/metrics.hpp"
#include "util/csv.hpp"

namespace ubac::telemetry {

/// JSON string escaping shared by the JSON exporter and the live
/// endpoints (/series, /alerts).
std::string json_escape(const std::string& s);

/// `labels` as a JSON object literal, e.g. {"controller":"concurrent"}.
std::string json_labels(const Labels& labels);

std::string to_prometheus(const MetricsSnapshot& snapshot);

std::string to_json(const MetricsSnapshot& snapshot);

void write_csv(const MetricsSnapshot& snapshot, util::CsvWriter& csv);

/// Write `text` to `path` (parent directory must exist); throws on failure.
void write_file(const std::string& path, const std::string& text);

}  // namespace ubac::telemetry
