#pragma once

/// \file timeseries.hpp
/// \brief Time-series rollups over the metrics registry and the sampler
///        thread that feeds them.
///
/// The instruments in metrics.hpp are point-in-time: exporters render
/// whatever the counters hold *now*, and the per-(server, class) gauges go
/// stale unless a caller remembers to refresh them before a scrape. This
/// file adds the time dimension for a long-running admission service:
///
///  * RollupRing     — fixed-size ring of per-window aggregates
///                     (min / max / last / avg over the tick samples that
///                     landed in the window). Memory is bounded and
///                     pre-allocated; old windows are overwritten.
///  * TimeSeriesStore — one RollupRing per (name, labels) series, fed from
///                     MetricsSnapshots. Counters are *rate-derived*: the
///                     per-tick sample is (value delta) / (tick seconds),
///                     so a counter's rollup answers "how many per second"
///                     while `last` keeps the raw cumulative value.
///                     Histograms contribute their `_count` the same way.
///  * TelemetrySampler — a background thread that every tick runs the
///                     registered refresh hooks (e.g. the admission
///                     pull-model gauges), snapshots the registry, feeds
///                     the store, and evaluates the AlertEngine. With a
///                     sampler running, a /metrics scrape is never stale
///                     and manual update_utilization_gauges() calls are
///                     unnecessary.
///
/// Threading: the store is mutex-guarded — ticks happen a few times per
/// second, scrapes read snapshots; neither is on the admission hot path.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ubac::telemetry {

class AlertEngine;  // telemetry/alerts.hpp

/// One completed (or in-progress) rollup window of tick samples.
struct RollupWindow {
  std::int64_t start_ns = 0;  ///< timestamp of the first tick in the window
  std::int64_t end_ns = 0;    ///< timestamp of the last tick so far
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;  ///< raw instrument value at the last tick (counters:
                      ///< cumulative count, not the rate)
  double sum = 0.0;   ///< sum of tick samples (avg() = sum / count)
  std::uint64_t count = 0;  ///< tick samples aggregated so far

  double avg() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Fixed-size ring of rollup windows. Every `ticks_per_window` consecutive
/// observe() calls share one window; the ring keeps the most recent
/// `capacity` windows and overwrites the oldest in place.
class RollupRing {
 public:
  RollupRing(std::size_t capacity, std::size_t ticks_per_window);

  /// Aggregate one tick sample. `value` is what min/max/avg roll up
  /// (gauge value, or derived rate for counters); `raw_last` is the
  /// instrument's raw value recorded as the window's `last`.
  void observe(std::int64_t t_ns, double value, double raw_last);

  std::size_t capacity() const { return capacity_; }
  std::size_t ticks_per_window() const { return ticks_per_window_; }
  /// Ticks observed, total.
  std::uint64_t ticks() const { return ticks_; }
  /// Windows ever started (>= capacity means the ring has wrapped).
  std::uint64_t windows_started() const;

  /// Retained windows, oldest first; the newest entry may still be
  /// partial (count < ticks_per_window). At most `max_windows` newest
  /// windows when non-zero.
  std::vector<RollupWindow> windows(std::size_t max_windows = 0) const;

  /// The newest window, partial or not; default-constructed when empty.
  RollupWindow latest() const;

 private:
  std::size_t capacity_;
  std::size_t ticks_per_window_;
  std::uint64_t ticks_ = 0;
  std::vector<RollupWindow> ring_;
};

/// Rollup rings keyed by (metric name, labels), fed from MetricsSnapshots.
class TimeSeriesStore {
 public:
  /// Every series gets a `windows`-deep ring of `ticks_per_window`-tick
  /// windows.
  TimeSeriesStore(std::size_t windows, std::size_t ticks_per_window);

  /// Fold one registry snapshot taken at `t_ns` into the rollups.
  /// Counters (and histogram counts) are rate-derived against the
  /// previous tick; the very first tick of a series establishes the
  /// baseline and contributes rate 0.
  void ingest(const MetricsSnapshot& snapshot, std::int64_t t_ns);

  struct SeriesView {
    std::string name;
    Labels labels;
    InstrumentKind kind = InstrumentKind::kGauge;
    bool rate_derived = false;  ///< window min/max/avg are per-second rates
    std::vector<RollupWindow> windows;  ///< oldest first
  };

  /// All series whose metric name is `name` (every label set), each with
  /// its newest `max_windows` windows (0 = all retained).
  std::vector<SeriesView> series(const std::string& name,
                                 std::size_t max_windows = 0) const;

  /// Newest window of one exact (name, labels) series; false when absent.
  bool latest(const std::string& name, const Labels& labels,
              RollupWindow& out) const;

  std::size_t series_count() const;
  /// Distinct metric names with at least one series.
  std::vector<std::string> names() const;

  /// Ring geometry every series is created with.
  std::size_t window_capacity() const { return windows_; }
  std::size_t ticks_per_window() const { return ticks_per_window_; }

  /// One row of the /series index (the no-name form of the endpoint).
  struct SeriesIndexEntry {
    std::string name;
    std::size_t series = 0;  ///< label sets registered under this name
    std::uint64_t windows_started = 0;  ///< max across the name's rings
  };
  /// All registered names, sorted, with per-name series counts.
  std::vector<SeriesIndexEntry> index() const;

  /// JSON for the /series endpoint: {"name": ..., "series": [...]}.
  /// Each series carries its labels, kind, and per-window
  /// start/end/min/max/avg/last/count (min/max/avg are per-second rates
  /// for rate-derived series).
  std::string to_json(const std::string& name,
                      std::size_t max_windows = 0) const;

 private:
  struct Series {
    Labels labels;
    InstrumentKind kind;
    bool rate_derived;
    bool has_prev = false;
    double prev_value = 0.0;
    std::int64_t prev_t_ns = 0;
    RollupRing ring;
  };

  void ingest_value(const std::string& name, const Labels& labels,
                    InstrumentKind kind, bool rate_derived, double value,
                    std::int64_t t_ns);

  std::size_t windows_;
  std::size_t ticks_per_window_;
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<std::unique_ptr<Series>>> by_name_;
};

/// Background sampler: every tick, run the refresh hooks, snapshot the
/// registry, feed the store, evaluate alerts. Construct, add hooks/alerts,
/// then start(); or drive tick_now() manually (tests, single-shot tools).
class TelemetrySampler {
 public:
  struct Options {
    std::chrono::milliseconds tick{250};
    std::size_t ticks_per_window = 4;  ///< 1 s windows at the default tick
    std::size_t windows = 64;          ///< ring depth (~1 min of history)
  };

  explicit TelemetrySampler(MetricsRegistry& registry);
  TelemetrySampler(MetricsRegistry& registry, Options options);
  ~TelemetrySampler();  ///< stops the thread if still running

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Run `hook` at the start of every tick, before the snapshot — this is
  /// where pull-model gauge refreshers (update_utilization_gauges) belong.
  /// Not synchronized against a running sampler: add hooks before start().
  void add_tick_hook(std::function<void()> hook);

  /// Evaluate `engine` after every ingest (same tick cadence). The engine
  /// must outlive the sampler's run. Set before start().
  void set_alert_engine(AlertEngine* engine) { alerts_ = engine; }

  /// Run `hook` at the end of every tick, after the alert engine has
  /// evaluated — this is where alert *consumers* (the reconfiguration
  /// actuator) belong: they see the freshest rule states and actions.
  /// Not synchronized against a running sampler: add hooks before start().
  void add_post_alert_hook(std::function<void()> hook);

  void start();
  void stop();  ///< idempotent; joins the thread
  bool running() const { return thread_.joinable(); }

  /// One synchronous tick on the caller's thread (hooks -> snapshot ->
  /// ingest -> alerts). Safe to call while the background thread runs
  /// (the store and engine are internally locked), but meant for manual
  /// driving when the thread is off.
  void tick_now();

  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  const TimeSeriesStore& store() const { return store_; }
  TimeSeriesStore& store() { return store_; }
  const Options& options() const { return options_; }

 private:
  void run();

  MetricsRegistry* registry_;
  Options options_;
  TimeSeriesStore store_;
  std::vector<std::function<void()>> hooks_;
  std::vector<std::function<void()>> post_alert_hooks_;
  AlertEngine* alerts_ = nullptr;
  std::atomic<std::uint64_t> ticks_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace ubac::telemetry
