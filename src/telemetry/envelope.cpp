#include "telemetry/envelope.hpp"

#include <cmath>

namespace ubac::telemetry {
namespace {

/// Bounded linear-probe window: a registration scans at most this many
/// slots before giving up (counted, never blocking).
constexpr std::size_t kProbeWindow = 16;

constexpr double kUnitsPerBit = 1024.0;  // 2^10 granules per bit

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// SplitMix64 finalizer — full-avalanche mix of the flow id so the
/// controller's consecutive id blocks spread across the table.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::atomic<ArrivalRecorder*> ArrivalRecorder::g_active_{nullptr};

void ArrivalRecorder::install(ArrivalRecorder* recorder) {
  g_active_.store(recorder, std::memory_order_release);
}

ArrivalRecorder::ArrivalRecorder(Options options)
    : capacity_(round_up_pow2(options.capacity < 2 ? 2 : options.capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

ArrivalRecorder::Slot* ArrivalRecorder::find(
    traffic::FlowId flow_id) const noexcept {
  const std::uint64_t key = flow_id + 1;
  const std::size_t home = static_cast<std::size_t>(mix(flow_id)) & mask_;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = slots_[(home + i) & mask_];
    if (slot.key.load(std::memory_order_acquire) == key) return &slot;
  }
  return nullptr;
}

void ArrivalRecorder::on_admit(traffic::FlowId flow_id,
                               std::uint32_t class_index) noexcept {
  const std::uint64_t key = flow_id + 1;
  const std::size_t home = static_cast<std::size_t>(mix(flow_id)) & mask_;
  // Full existence scan before claiming: a freed slot earlier in the
  // probe path must not shadow a still-live registration further along
  // (re-admit stays a no-op even after neighbour churn).
  if (find(flow_id) != nullptr) return;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = slots_[(home + i) & mask_];
    std::uint64_t expected = slot.key.load(std::memory_order_acquire);
    if (expected == key) return;  // already registered
    if (expected != 0) continue;
    if (slot.key.compare_exchange_strong(expected, key,
                                         std::memory_order_acq_rel)) {
      // Slot claimed: scrub the previous occupant's state. Records for
      // this id can only start after on_admit returns (the caller learns
      // the id from the admit), so no writer races the scrub.
      slot.class_index.store(class_index, std::memory_order_relaxed);
      slot.registered_ns.store(0, std::memory_order_relaxed);
      slot.total_units.store(0, std::memory_order_relaxed);
      for (auto& scale : slot.buckets)
        for (auto& bucket : scale) {
          bucket.epoch.store(-1, std::memory_order_relaxed);
          bucket.units.store(0, std::memory_order_relaxed);
        }
      live_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    if (expected == key) return;  // lost the race to ourselves
  }
  dropped_registrations_.fetch_add(1, std::memory_order_relaxed);
}

void ArrivalRecorder::on_release(traffic::FlowId flow_id) noexcept {
  Slot* slot = find(flow_id);
  if (!slot) return;
  std::uint64_t expected = flow_id + 1;
  if (slot->key.compare_exchange_strong(expected, 0,
                                        std::memory_order_acq_rel))
    live_.fetch_sub(1, std::memory_order_acq_rel);
}

void ArrivalRecorder::record(traffic::FlowId flow_id, double bits,
                             std::int64_t t_ns) noexcept {
  Slot* slot = find(flow_id);
  if (!slot) {
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!(bits > 0.0)) return;
  // Round DOWN to the 2^-10 grid: Ê never overcounts true arrivals.
  const std::uint64_t units =
      static_cast<std::uint64_t>(bits * kUnitsPerBit);
  std::int64_t reg = slot->registered_ns.load(std::memory_order_relaxed);
  if (reg == 0)  // first arrival stamps the observation epoch
    slot->registered_ns.compare_exchange_strong(reg, t_ns,
                                                std::memory_order_relaxed);
  slot->total_units.fetch_add(units, std::memory_order_relaxed);
  for (std::size_t s = 0; s < kScales; ++s) {
    const std::int64_t width =
        kWindowNs[s] / static_cast<std::int64_t>(kBucketsPerScale);
    const std::int64_t epoch = t_ns / width;
    Bucket& bucket =
        slot->buckets[s][static_cast<std::size_t>(epoch) % kBucketsPerScale];
    std::int64_t seen = bucket.epoch.load(std::memory_order_acquire);
    if (seen != epoch) {
      if (seen > epoch) continue;  // late arrival into a recycled bucket
      if (bucket.epoch.compare_exchange_strong(seen, epoch,
                                               std::memory_order_acq_rel)) {
        // A concurrent add between this CAS and the zeroing is lost:
        // undercount, the conservative direction.
        bucket.units.store(0, std::memory_order_relaxed);
      } else if (seen != epoch) {
        continue;  // someone advanced the bucket past us
      }
    }
    bucket.units.fetch_add(units, std::memory_order_relaxed);
  }
}

void ArrivalRecorder::collect(std::int64_t now_ns,
                              std::vector<FlowWindows>& out) const {
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t key = slot.key.load(std::memory_order_acquire);
    if (key == 0) continue;
    FlowWindows fw;
    fw.flow_id = key - 1;
    fw.class_index = slot.class_index.load(std::memory_order_relaxed);
    fw.registered_ns = slot.registered_ns.load(std::memory_order_relaxed);
    fw.total_bits =
        static_cast<double>(slot.total_units.load(std::memory_order_relaxed)) /
        kUnitsPerBit;
    for (std::size_t s = 0; s < kScales; ++s) {
      const std::int64_t width =
          kWindowNs[s] / static_cast<std::int64_t>(kBucketsPerScale);
      const std::int64_t newest = now_ns / width;
      const std::int64_t oldest =
          newest - static_cast<std::int64_t>(kBucketsPerScale) + 1;
      std::uint64_t sum = 0;
      for (const Bucket& bucket : slot.buckets[s]) {
        const std::int64_t epoch =
            bucket.epoch.load(std::memory_order_acquire);
        if (epoch >= oldest && epoch <= newest)
          sum += bucket.units.load(std::memory_order_relaxed);
      }
      fw.window_bits[s] = static_cast<double>(sum) / kUnitsPerBit;
    }
    // A slot released (or recycled) mid-read carries another flow's
    // partial data: drop it, the next collect() sees a settled view.
    if (slot.key.load(std::memory_order_acquire) != key) continue;
    out.push_back(fw);
  }
}

}  // namespace ubac::telemetry
