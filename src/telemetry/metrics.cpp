#include "telemetry/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace ubac::telemetry {

namespace detail {

std::size_t stripe_index() noexcept {
  // One stripe per thread for up to kStripes live threads; beyond that
  // threads share stripes, which costs contention but never correctness.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

}  // namespace detail

const char* to_string(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), stripes_(detail::kStripes) {
  if (bounds_.empty())
    throw std::invalid_argument("LatencyHistogram: no buckets");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i] > bounds_[i - 1]))
      throw std::invalid_argument(
          "LatencyHistogram: bounds must be strictly increasing");
  for (auto& stripe : stripes_)
    stripe.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void LatencyHistogram::record(double v) noexcept {
  // First bucket whose upper bound is >= v (`le` semantics); +Inf last.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  Stripe& stripe = stripes_[detail::stripe_index()];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  double cur = stripe.sum.load(std::memory_order_relaxed);
  while (!stripe.sum.compare_exchange_weak(cur, cur + v,
                                           std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& stripe : stripes_)
    n += stripe.count.load(std::memory_order_relaxed);
  return n;
}

double LatencyHistogram::sum() const noexcept {
  double s = 0.0;
  for (const auto& stripe : stripes_)
    s += stripe.sum.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const auto& stripe : stripes_)
    for (std::size_t b = 0; b < counts.size(); ++b)
      counts[b] += stripe.buckets[b].load(std::memory_order_relaxed);
  return counts;
}

double LatencyHistogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("quantile: q outside [0,1]");
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cum += counts[b];
    if (static_cast<double>(cum) >= target && counts[b] > 0) {
      if (b >= bounds_.size()) return bounds_.back();  // +Inf bucket
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      const double hi = bounds_[b];
      const auto below = static_cast<double>(cum - counts[b]);
      const double frac =
          (target - below) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.back();
}

std::vector<double> LatencyHistogram::exponential_bounds(double lo, double hi,
                                                         std::size_t n) {
  if (!(lo > 0.0) || !(hi > lo) || n < 2)
    throw std::invalid_argument("exponential_bounds: need 0 < lo < hi, n >= 2");
  std::vector<double> bounds(n);
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double b = lo;
  for (std::size_t i = 0; i < n; ++i, b *= ratio) bounds[i] = b;
  bounds.back() = hi;  // guard fp drift on the final bound
  return bounds;
}

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const Labels& labels) const {
  for (const auto& fam : families) {
    if (fam.name != name) continue;
    for (const auto& sample : fam.samples)
      if (sample.labels == labels) return &sample;
  }
  return nullptr;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 InstrumentKind kind) {
  for (auto& fam : families_) {
    if (fam->name != name) continue;
    if (fam->kind != kind)
      throw std::logic_error("metric '" + name +
                             "' re-registered as a different kind");
    return *fam;
  }
  families_.push_back(std::make_unique<Family>(
      Family{name, help, kind, {}}));
  return *families_.back();
}

MetricsRegistry::Series& MetricsRegistry::series(Family& fam,
                                                 const Labels& labels) {
  for (auto& s : fam.series)
    if (s->labels == labels) return *s;
  fam.series.push_back(std::make_unique<Series>());
  fam.series.back()->labels = labels;
  return *fam.series.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, InstrumentKind::kCounter), labels);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, InstrumentKind::kGauge), labels);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             const std::string& help,
                                             std::vector<double> upper_bounds,
                                             const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& s = series(family(name, help, InstrumentKind::kHistogram), labels);
  if (!s.histogram)
    s.histogram = std::make_unique<LatencyHistogram>(std::move(upper_bounds));
  return *s.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.families.reserve(families_.size());
  for (const auto& fam : families_) {
    MetricFamily out{fam->name, fam->help, fam->kind, {}};
    for (const auto& s : fam->series) {
      MetricSample sample;
      sample.labels = s->labels;
      switch (fam->kind) {
        case InstrumentKind::kCounter:
          sample.value = static_cast<double>(s->counter->value());
          break;
        case InstrumentKind::kGauge:
          sample.value = s->gauge->value();
          break;
        case InstrumentKind::kHistogram:
          sample.histogram.bounds = s->histogram->bounds();
          sample.histogram.counts = s->histogram->bucket_counts();
          sample.histogram.sum = s->histogram->sum();
          sample.histogram.count = s->histogram->count();
          break;
      }
      out.samples.push_back(std::move(sample));
    }
    snap.families.push_back(std::move(out));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace ubac::telemetry
