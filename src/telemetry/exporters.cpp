#include "telemetry/exporters.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ubac::telemetry {

namespace {

std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  // %.17g round-trips doubles; trim to %g when exact to keep output tidy.
  std::snprintf(buf, sizeof(buf), "%g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Label-value escaping per the Prometheus 0.0.4 exposition format:
// backslash, double quote, and line feed must be escaped inside the
// quoted label value.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + prom_escape(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string csv_labels(const Labels& labels) {
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ";";
    out += labels[i].first + "=" + labels[i].second;
  }
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(labels[i].first) + "\":\"" +
           json_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& fam : snapshot.families) {
    out += "# HELP " + fam.name + " " + fam.help + "\n";
    out += "# TYPE " + fam.name + " " + to_string(fam.kind) + "\n";
    for (const auto& sample : fam.samples) {
      if (fam.kind != InstrumentKind::kHistogram) {
        out += fam.name + prom_labels(sample.labels) + " " +
               fmt_double(sample.value) + "\n";
        continue;
      }
      const HistogramSnapshot& h = sample.histogram;
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        cum += h.counts[b];
        const std::string le =
            b < h.bounds.size() ? fmt_double(h.bounds[b]) : "+Inf";
        out += fam.name + "_bucket" + prom_labels(sample.labels, "le", le) +
               " " + std::to_string(cum) + "\n";
      }
      out += fam.name + "_sum" + prom_labels(sample.labels) + " " +
             fmt_double(h.sum) + "\n";
      out += fam.name + "_count" + prom_labels(sample.labels) + " " +
             std::to_string(h.count) + "\n";
    }
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first_fam = true;
  for (const auto& fam : snapshot.families) {
    if (!first_fam) out += ",";
    first_fam = false;
    out += "{\"name\":\"" + json_escape(fam.name) + "\",\"type\":\"" +
           to_string(fam.kind) + "\",\"help\":\"" + json_escape(fam.help) +
           "\",\"samples\":[";
    for (std::size_t i = 0; i < fam.samples.size(); ++i) {
      const auto& sample = fam.samples[i];
      if (i) out += ",";
      out += "{\"labels\":" + json_labels(sample.labels);
      if (fam.kind != InstrumentKind::kHistogram) {
        out += ",\"value\":" + fmt_double(sample.value) + "}";
        continue;
      }
      const HistogramSnapshot& h = sample.histogram;
      out += ",\"bounds\":[";
      for (std::size_t b = 0; b < h.bounds.size(); ++b) {
        if (b) out += ",";
        out += fmt_double(h.bounds[b]);
      }
      out += "],\"counts\":[";
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        if (b) out += ",";
        out += std::to_string(h.counts[b]);
      }
      out += "],\"sum\":" + fmt_double(h.sum) +
             ",\"count\":" + std::to_string(h.count) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void write_csv(const MetricsSnapshot& snapshot, util::CsvWriter& csv) {
  csv.write_row({"name", "type", "labels", "le", "value"});
  for (const auto& fam : snapshot.families) {
    const char* type = to_string(fam.kind);
    for (const auto& sample : fam.samples) {
      const std::string labels = csv_labels(sample.labels);
      if (fam.kind != InstrumentKind::kHistogram) {
        csv.write_row({fam.name, type, labels, "", fmt_double(sample.value)});
        continue;
      }
      const HistogramSnapshot& h = sample.histogram;
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        const std::string le =
            b < h.bounds.size() ? fmt_double(h.bounds[b]) : "+Inf";
        csv.write_row({fam.name + "_bucket", type, labels, le,
                       std::to_string(h.counts[b])});
      }
      csv.write_row({fam.name + "_sum", type, labels, "", fmt_double(h.sum)});
      csv.write_row(
          {fam.name + "_count", type, labels, "", std::to_string(h.count)});
    }
  }
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text;
}

}  // namespace ubac::telemetry
