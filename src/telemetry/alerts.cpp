#include "telemetry/alerts.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "telemetry/exporters.hpp"

namespace ubac::telemetry {

const char* to_string(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "?";
}

const char* to_string(AlertAction::Kind kind) {
  switch (kind) {
    case AlertAction::Kind::kStarved: return "starved";
    case AlertAction::Kind::kIdle: return "idle";
    case AlertAction::Kind::kMisdeclaring: return "misdeclaring";
  }
  return "?";
}

AlertEngine::AlertEngine(Options options) : options_(options) {}

void AlertEngine::add_rule(AlertRule rule) {
  if (!rule.check) throw std::invalid_argument("AlertRule: missing check");
  if (rule.for_ticks == 0) rule.for_ticks = 1;
  if (rule.resolve_ticks == 0) rule.resolve_ticks = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  RuleState rs;
  rs.fire_reason = std::make_unique<std::string>(rule.name + ":fire");
  rs.resolve_reason = std::make_unique<std::string>(rule.name + ":resolved");
  if (options_.metrics != nullptr) {
    rs.fired_total = &options_.metrics->counter(
        "ubac_alerts_fired_total", "Alert fire transitions by rule",
        {{"rule", rule.name}});
    rs.active = &options_.metrics->gauge(
        "ubac_alerts_active", "1 while the rule is firing, else 0",
        {{"rule", rule.name}});
    rs.active->set(0.0);
  }
  rs.rule = std::move(rule);
  rules_.push_back(std::move(rs));
}

std::size_t AlertEngine::rule_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rules_.size();
}

bool AlertEngine::configure_rule(const std::string& name,
                                 const AlertRuleConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (RuleState& rs : rules_) {
    if (rs.rule.name != name) continue;
    if (config.threshold) rs.rule.threshold = *config.threshold;
    if (config.for_ticks)
      rs.rule.for_ticks = std::max<std::size_t>(1, *config.for_ticks);
    if (config.resolve_ticks)
      rs.rule.resolve_ticks = std::max<std::size_t>(1, *config.resolve_ticks);
    return true;
  }
  return false;
}

std::string AlertEngine::config_to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"rules\":[";
  char buf[96];
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i].rule;
    if (i) out += ",";
    out += "\n {\"rule\":\"" + json_escape(rule.name) + "\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"threshold\":%.9g,\"for_ticks\":%zu,"
                  "\"resolve_ticks\":%zu}",
                  rule.threshold, rule.for_ticks, rule.resolve_ticks);
    out += buf;
  }
  out += "\n]}";
  return out;
}

void AlertEngine::mirror(const RuleState& rs, bool fire, double value,
                         std::int64_t t_ns) {
  if (options_.tracer == nullptr) return;
  TraceEvent ev;
  ev.kind = TraceEventKind::kAlert;
  ev.timestamp_ns = t_ns;
  ev.utilization = value;
  ev.reason = fire ? rs.fire_reason->c_str() : rs.resolve_reason->c_str();
  options_.tracer->record(ev);
}

void AlertEngine::evaluate(const MetricsSnapshot& snapshot,
                           const TimeSeriesStore& store, std::int64_t t_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++evaluations_;
  for (RuleState& rs : rules_) {
    std::optional<AlertObservation> breach =
        rs.rule.check(snapshot, store, rs.rule.threshold);
    if (breach)
      rs.actions = std::move(breach->actions);
    else
      rs.actions.clear();
    switch (rs.state) {
      case AlertState::kInactive:
        if (breach) {
          rs.state = AlertState::kPending;
          rs.since_ns = t_ns;
          rs.streak = 1;
          rs.value = breach->value;
        }
        break;
      case AlertState::kPending:
        if (!breach) {
          rs.state = AlertState::kInactive;
          rs.since_ns = t_ns;
          rs.streak = 0;
          rs.value = 0.0;
          break;
        }
        rs.value = breach->value;
        ++rs.streak;
        break;
      case AlertState::kFiring:
        if (breach) {
          rs.value = breach->value;
          rs.streak = 0;  // quiet run restarts
        } else if (++rs.streak >= rs.rule.resolve_ticks) {
          rs.state = AlertState::kInactive;
          rs.since_ns = t_ns;
          rs.streak = 0;
          rs.value = 0.0;
          if (rs.active != nullptr) rs.active->set(0.0);
          mirror(rs, /*fire=*/false, 0.0, t_ns);
        }
        break;
    }
    if (rs.state == AlertState::kPending && rs.streak >= rs.rule.for_ticks) {
      rs.state = AlertState::kFiring;
      rs.since_ns = t_ns;
      rs.streak = 0;
      ++rs.fired;
      if (rs.fired_total != nullptr) rs.fired_total->add();
      if (rs.active != nullptr) rs.active->set(1.0);
      mirror(rs, /*fire=*/true, rs.value, t_ns);
      // Freeze the flight recorder on the way *into* firing, while the
      // conditions that breached the rule are still live.
      fire_snapshot_ = FlightSnapshot::capture(
          options_.tracer, options_.metrics, options_.snapshot_max_events);
      has_fire_snapshot_ = true;
    }
  }
}

std::vector<AlertStatus> AlertEngine::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AlertStatus> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) {
    AlertStatus st;
    st.rule = rs.rule.name;
    st.description = rs.rule.description;
    st.state = rs.state;
    st.value = rs.value;
    st.threshold = rs.rule.threshold;
    st.streak = rs.streak;
    st.fired = rs.fired;
    st.since_ns = rs.since_ns;
    st.actions = rs.actions;
    out.push_back(std::move(st));
  }
  return out;
}

bool AlertEngine::any_firing() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RuleState& rs : rules_)
    if (rs.state == AlertState::kFiring) return true;
  return false;
}

std::uint64_t AlertEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evaluations_;
}

FlightSnapshot AlertEngine::last_fire_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fire_snapshot_;
}

bool AlertEngine::has_fire_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_fire_snapshot_;
}

std::string AlertEngine::to_json() const {
  const auto statuses = status();
  std::string out = "{\"evaluations\":" + std::to_string(evaluations()) +
                    ",\"firing\":" + (any_firing() ? "true" : "false") +
                    ",\"alerts\":[";
  char buf[192];
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    const AlertStatus& st = statuses[i];
    if (i) out += ",";
    out += "\n {\"rule\":\"" + json_escape(st.rule) + "\",\"description\":\"" +
           json_escape(st.description) + "\",\"state\":\"" +
           to_string(st.state) + "\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"value\":%.9g,\"threshold\":%.9g,\"streak\":%zu,"
                  "\"fired\":%llu,\"since_ns\":%lld,\"actions\":[",
                  st.value, st.threshold, st.streak,
                  static_cast<unsigned long long>(st.fired),
                  static_cast<long long>(st.since_ns));
    out += buf;
    for (std::size_t a = 0; a < st.actions.size(); ++a) {
      const AlertAction& action = st.actions[a];
      if (a) out += ",";
      std::snprintf(buf, sizeof(buf),
                    "{\"kind\":\"%s\",\"server\":%u,\"class\":%u,"
                    "\"flow\":%llu,\"value\":%.9g}",
                    to_string(action.kind), action.server, action.class_index,
                    static_cast<unsigned long long>(action.flow_id),
                    action.value);
      out += buf;
    }
    out += "]}";
  }
  out += "\n]}";
  return out;
}

// -- built-in rules ---------------------------------------------------------

namespace {

/// Parse the "server"/"class" labels ControllerTelemetry puts on
/// ubac_admission_class_utilization into an action; false when the sample
/// belongs to another controller or the labels are malformed.
bool parse_budget_labels(const MetricSample& sample,
                         const std::string& controller, std::uint32_t& server,
                         std::uint32_t& class_index) {
  bool ours = false, has_server = false, has_class = false;
  for (const auto& [key, value] : sample.labels) {
    if (key == "controller" && value == controller) {
      ours = true;
    } else if (key == "server" || key == "class") {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return false;
      if (key == "server") {
        server = static_cast<std::uint32_t>(parsed);
        has_server = true;
      } else {
        class_index = static_cast<std::uint32_t>(parsed);
        has_class = true;
      }
    }
  }
  return ours && has_server && has_class;
}

}  // namespace

AlertRule AlertEngine::headroom_rule(const std::string& controller,
                                     double threshold, std::size_t k,
                                     double idle_fraction) {
  AlertRule rule;
  rule.name = "headroom-exhaustion";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ubac_admission_class_utilization{controller=%s} holds above "
                "the live threshold of the verified class share",
                controller.c_str());
  rule.description = buf;
  rule.threshold = threshold;
  rule.for_ticks = k;
  rule.resolve_ticks = k;
  rule.check = [controller, idle_fraction](
                   const MetricsSnapshot& snapshot, const TimeSeriesStore&,
                   double live_threshold) -> std::optional<AlertObservation> {
    AlertObservation obs;
    std::vector<AlertAction> idle;
    for (const MetricFamily& family : snapshot.families) {
      if (family.name != "ubac_admission_class_utilization") continue;
      for (const MetricSample& sample : family.samples) {
        AlertAction action;
        if (!parse_budget_labels(sample, controller, action.server,
                                 action.class_index))
          continue;
        action.value = sample.value;
        if (sample.value > live_threshold) {
          action.kind = AlertAction::Kind::kStarved;
          obs.value = std::max(obs.value, sample.value);
          obs.actions.push_back(action);
        } else if (sample.value < idle_fraction) {
          action.kind = AlertAction::Kind::kIdle;
          idle.push_back(action);
        }
      }
    }
    if (obs.actions.empty()) return std::nullopt;
    // Idle budgets only matter as re-share donors when something starves.
    obs.actions.insert(obs.actions.end(), idle.begin(), idle.end());
    return obs;
  };
  return rule;
}

AlertRule AlertEngine::rejection_spike_rule(const std::string& controller,
                                            double per_second, std::size_t k) {
  AlertRule rule;
  rule.name = "rejection-spike";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "utilization-exceeded rejections{controller=%s} above the "
                "live per-second threshold",
                controller.c_str());
  rule.description = buf;
  rule.threshold = per_second;
  rule.for_ticks = k;
  rule.resolve_ticks = k;
  rule.check = [controller](const MetricsSnapshot&,
                            const TimeSeriesStore& store, double live_threshold)
      -> std::optional<AlertObservation> {
    RollupWindow window;
    if (!store.latest("ubac_admission_decisions_total",
                      {{"controller", controller},
                       {"outcome", "utilization-exceeded"}},
                      window))
      return std::nullopt;
    // `max` of a rate-derived series is the peak per-second rate seen in
    // the newest window; `count == 1` windows equal the latest tick rate.
    if (window.max > live_threshold) return AlertObservation{window.max, {}};
    return std::nullopt;
  };
  return rule;
}

AlertRule AlertEngine::deadline_miss_rule(std::size_t k) {
  AlertRule rule;
  rule.name = "deadline-miss";
  rule.description =
      "ubac_watchdog_deadline_misses_total is moving: a configured "
      "guarantee was broken";
  rule.threshold = 0.0;
  rule.for_ticks = k;
  rule.resolve_ticks = k;
  rule.check = [](const MetricsSnapshot&, const TimeSeriesStore& store,
                  double live_threshold) -> std::optional<AlertObservation> {
    RollupWindow window;
    if (!store.latest("ubac_watchdog_deadline_misses_total", {}, window))
      return std::nullopt;
    if (window.max > live_threshold) return AlertObservation{window.max, {}};
    return std::nullopt;
  };
  return rule;
}

}  // namespace ubac::telemetry
