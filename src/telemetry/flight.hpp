#pragma once

/// \file flight.hpp
/// \brief Telemetry-layer flight-recorder snapshot.
///
/// Everything an in-process watcher can grab the moment something goes
/// wrong: the tail of the structured event ring, the spans currently open
/// across all threads, and all gauge families. sim::DeadlineWatchdog
/// (deadline misses) and telemetry::AlertEngine (rule transitions to
/// firing) both freeze one of these, so a paged-in operator sees the same
/// shape of evidence whether the trigger came from the packet simulator
/// or from the live metric stream.

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/event_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace ubac::telemetry {

struct FlightSnapshot {
  std::int64_t wall_ns = 0;
  /// Most recent EventTracer events (newest last), when a tracer is wired.
  std::vector<TraceEvent> events;
  /// Spans open across all threads (the installed recorder's) at capture.
  std::vector<OpenSpanInfo> open_spans;
  /// Gauge families at capture time (utilization, queue depths), when a
  /// metrics registry is wired.
  std::vector<MetricFamily> gauges;

  /// Grab the tail of `tracer` (last `max_events`), the active
  /// SpanRecorder's open spans, and `metrics`' gauge families. Either
  /// pointer may be null; the corresponding section stays empty.
  static FlightSnapshot capture(const EventTracer* tracer,
                                const MetricsRegistry* metrics,
                                std::size_t max_events);

  /// The events / open-spans / gauges sections (no header line — callers
  /// prefix their own trigger context).
  std::string to_text() const;
};

}  // namespace ubac::telemetry
