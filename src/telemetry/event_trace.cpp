#include "telemetry/event_trace.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>

namespace ubac::telemetry {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Per-thread xorshift64* state for sampling draws.
std::uint64_t next_draw() noexcept {
  thread_local std::uint64_t state =
      0x9E3779B97F4A7C15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1Dull;
}

double next_unit() noexcept {
  return static_cast<double>(next_draw() >> 11) * 0x1p-53;
}

/// Per-thread geometric-skip state (see should_sample). Keyed to the
/// tracer so several tracers on one thread stay independently correct;
/// only the most recent one keeps its skip run (the common case is a
/// single process-wide tracer).
struct SampleSkipState {
  const void* owner = nullptr;
  std::uint64_t skips_left = 0;  ///< misses before the next sampled event
  std::uint64_t pending = 0;     ///< misses not yet added to sampled_out_
};

/// Number of Bernoulli(p) misses before the next hit, geometrically
/// distributed — the gap distribution of per-event coin flips, drawn once
/// per sampled event instead of once per event.
std::uint64_t draw_geometric_skips(double p) noexcept {
  const double u = next_unit();
  if (u <= 0.0) return 0;
  const double skips = std::floor(std::log(u) / std::log1p(-p));
  return skips < 1e18 ? static_cast<std::uint64_t>(skips) : std::uint64_t(1)
                                                                << 60;
}

}  // namespace

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAdmit: return "admit";
    case TraceEventKind::kReject: return "reject";
    case TraceEventKind::kRelease: return "release";
    case TraceEventKind::kRollback: return "rollback";
    case TraceEventKind::kSample: return "sample";
    case TraceEventKind::kAlert: return "alert";
    case TraceEventKind::kReconfig: return "reconfig";
    case TraceEventKind::kConformance: return "conformance";
  }
  return "?";
}

EventTracer::EventTracer(std::size_t capacity, double sampling)
    : capacity_(round_up_pow2(capacity == 0 ? 1 : capacity)),
      sampling_(sampling),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

bool EventTracer::should_sample() noexcept {
  if (sampling_ >= 1.0) return true;
  if (sampling_ <= 0.0) {
    sampled_out_.add();
    return false;
  }
  // Geometric skipping: drawing the whole gap to the next sampled event at
  // once is distributed identically to a coin flip per event, but the miss
  // path is a thread-local decrement — no RNG draw and no shared atomic.
  // sampled_out_ is credited in batches at each sampled event (so it can
  // lag by up to one gap per thread; exact after every hit).
  thread_local SampleSkipState tls;
  if (tls.owner != this) {
    tls.owner = this;
    tls.skips_left = draw_geometric_skips(sampling_);
    tls.pending = 0;
  }
  if (tls.skips_left > 0) {
    --tls.skips_left;
    ++tls.pending;
    return false;
  }
  if (tls.pending > 0) {
    sampled_out_.add(tls.pending);
    tls.pending = 0;
  }
  tls.skips_left = draw_geometric_skips(sampling_);
  return true;
}

void EventTracer::record(TraceEvent ev) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
  ev.seq = seq;
  if (ev.timestamp_ns == 0) ev.timestamp_ns = now_ns();
  Slot& slot = slots_[seq & (capacity_ - 1)];
  // Per-slot seqlock with writer exclusion. Two writers meet at one slot
  // only when one has been lapped by a whole ring rotation; without
  // exclusion their payload copies would race. The stamp holds
  // 2 * (seq + 1) once published and goes odd while a writer owns the
  // slot, so:
  //   * a writer that finds a claim >= its own is the lapped one — its
  //     event is stale by a full ring and is dropped;
  //   * a writer that finds an older claim mid-write waits it out (bounded
  //     by one payload copy), then takes the slot;
  // which guarantees the newest seq's payload is what quiesces in place.
  const std::uint64_t published = 2 * (seq + 1);
  std::uint64_t cur = slot.stamp.load(std::memory_order_relaxed);
  for (;;) {
    if (cur >= published) return;  // lapped: a newer event owns this slot
    if (cur & 1) {  // older writer mid-copy; it cannot block, so spin
      cur = slot.stamp.load(std::memory_order_relaxed);
      continue;
    }
    if (slot.stamp.compare_exchange_weak(cur, published | 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed))
      break;
  }
  slot.ev = ev;
  slot.stamp.store(published, std::memory_order_release);
}

std::vector<TraceEvent> EventTracer::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<TraceEvent> events;
  events.reserve(n);
  for (std::uint64_t seq = head - n; seq < head; ++seq) {
    const Slot& slot = slots_[seq & (capacity_ - 1)];
    const std::uint64_t published = 2 * (seq + 1);
    const std::uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before != published) continue;  // mid-write or already overwritten
    TraceEvent ev = slot.ev;
    if (slot.stamp.load(std::memory_order_acquire) != published) continue;
    events.push_back(ev);
  }
  return events;
}

std::string EventTracer::to_json() const {
  const auto events = snapshot();
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"seq\":%llu,\"kind\":\"%s\",\"t_ns\":%lld,\"flow\":%llu,"
        "\"class\":%u,\"src\":%u,\"dst\":%u,\"blocking_hop\":%u,"
        "\"utilization\":%.9g,\"reason\":\"%s\"}",
        i == 0 ? "" : ",", static_cast<unsigned long long>(e.seq),
        to_string(e.kind), static_cast<long long>(e.timestamp_ns),
        static_cast<unsigned long long>(e.flow_id), e.class_index, e.src,
        e.dst, e.blocking_hop, e.utilization, e.reason ? e.reason : "");
    out += buf;
  }
  out += "]";
  return out;
}

void EventTracer::write_csv(util::CsvWriter& csv) const {
  csv.write_row({"seq", "kind", "t_ns", "flow", "class", "src", "dst",
                 "blocking_hop", "utilization", "reason"});
  char num[64];
  for (const TraceEvent& e : snapshot()) {
    std::snprintf(num, sizeof(num), "%.9g", e.utilization);
    csv.write_row({std::to_string(e.seq), to_string(e.kind),
                   std::to_string(e.timestamp_ns), std::to_string(e.flow_id),
                   std::to_string(e.class_index), std::to_string(e.src),
                   std::to_string(e.dst), std::to_string(e.blocking_hop), num,
                   e.reason ? e.reason : ""});
  }
}

std::int64_t EventTracer::now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ubac::telemetry
