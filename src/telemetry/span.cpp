#include "telemetry/span.hpp"

#include <algorithm>
#include <cstdio>

#include "telemetry/exporters.hpp"
#include "util/thread_pool.hpp"

namespace ubac::telemetry {

std::atomic<SpanRecorder*> SpanRecorder::g_active_{nullptr};

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// util::ThreadPool cannot depend on telemetry (layering), so worker tasks
// are wrapped through these function-pointer hooks instead.
void* pool_task_begin() {
  SpanRecorder* const r = SpanRecorder::active();
  if (r == nullptr) return nullptr;
  r->begin("pool.task", "pool");
  return r;
}

void pool_task_end(void* token) {
  if (token != nullptr) static_cast<SpanRecorder*>(token)->end();
}

std::string fmt_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

SpanRecorder::SpanRecorder(std::size_t capacity)
    : capacity_(round_up_pow2(capacity == 0 ? 1 : capacity)),
      slots_(std::make_unique<Slot[]>(capacity_)),
      epoch_ns_(now_ns()) {
  static std::atomic<std::uint64_t> next_generation{1};
  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed);
}

SpanRecorder::~SpanRecorder() {
  if (active() == this) install(nullptr);
}

void SpanRecorder::install(SpanRecorder* recorder) {
  g_active_.store(recorder, std::memory_order_release);
  util::TaskTraceHooks hooks;
  if (recorder != nullptr) {
    hooks.begin = &pool_task_begin;
    hooks.end = &pool_task_end;
  }
  util::set_task_trace_hooks(hooks);
}

SpanRecorder::ThreadState& SpanRecorder::thread_state() {
  // One-recorder fast path: the cache is keyed to the recorder, so a
  // thread alternating between recorders re-registers (gets a fresh lane)
  // on each switch. The process-wide install() pattern never does that.
  thread_local std::uint64_t cached_generation = 0;
  thread_local ThreadState* cached_state = nullptr;
  if (cached_generation == generation_) return *cached_state;
  std::lock_guard<std::mutex> lock(threads_mutex_);
  threads_.push_back(
      std::make_unique<ThreadState>(static_cast<std::uint32_t>(threads_.size())));
  cached_generation = generation_;
  cached_state = threads_.back().get();
  return *cached_state;
}

void SpanRecorder::begin(const char* name, const char* category,
                         const char* arg_key, double arg_value) {
  ThreadState& ts = thread_state();
  OpenSpanInfo info;
  info.name = name;
  info.category = category;
  info.thread = ts.id;
  info.start_ns = now_ns();
  info.arg_key = arg_key;
  info.arg_value = arg_value;
  std::lock_guard<std::mutex> lock(ts.mutex);
  ts.open.push_back(info);
}

void SpanRecorder::set_arg(const char* key, double value) {
  ThreadState& ts = thread_state();
  std::lock_guard<std::mutex> lock(ts.mutex);
  if (ts.open.empty()) return;
  ts.open.back().arg_key = key;
  ts.open.back().arg_value = value;
}

void SpanRecorder::end() {
  const std::int64_t end_ns = now_ns();
  ThreadState& ts = thread_state();
  OpenSpanInfo info;
  {
    std::lock_guard<std::mutex> lock(ts.mutex);
    if (ts.open.empty()) return;  // unbalanced end(); drop
    info = ts.open.back();
    ts.open.pop_back();
  }
  SpanEvent ev;
  ev.name = info.name;
  ev.category = info.category;
  ev.thread = info.thread;
  ev.start_ns = info.start_ns;
  ev.duration_ns = end_ns - info.start_ns;
  ev.arg_key = info.arg_key;
  ev.arg_value = info.arg_value;
  record(ev);
}

void SpanRecorder::record(const SpanEvent& ev) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[seq & (capacity_ - 1)];
  // Per-slot seqlock with writer exclusion, as in EventTracer::record():
  // stamp = 2 * (seq + 1) once published, odd while a writer owns the
  // slot. A lapped writer drops its stale span; a newer writer waits out
  // an older mid-copy, so the newest seq's payload quiesces in place.
  const std::uint64_t published = 2 * (seq + 1);
  std::uint64_t cur = slot.stamp.load(std::memory_order_relaxed);
  for (;;) {
    if (cur >= published) return;  // lapped: a newer span owns this slot
    if (cur & 1) {
      cur = slot.stamp.load(std::memory_order_relaxed);
      continue;
    }
    if (slot.stamp.compare_exchange_weak(cur, published | 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed))
      break;
  }
  slot.ev = ev;
  slot.ev.seq = seq;
  slot.stamp.store(published, std::memory_order_release);
}

std::vector<SpanEvent> SpanRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<SpanEvent> events;
  events.reserve(n);
  for (std::uint64_t seq = head - n; seq < head; ++seq) {
    const Slot& slot = slots_[seq & (capacity_ - 1)];
    const std::uint64_t published = 2 * (seq + 1);
    if (slot.stamp.load(std::memory_order_acquire) != published)
      continue;  // overwritten or mid-write
    SpanEvent ev = slot.ev;
    if (slot.stamp.load(std::memory_order_acquire) != published) continue;
    events.push_back(ev);
  }
  return events;
}

std::vector<OpenSpanInfo> SpanRecorder::open_spans() const {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  std::vector<OpenSpanInfo> out;
  for (const auto& ts : threads_) {
    std::lock_guard<std::mutex> thread_lock(ts->mutex);
    out.insert(out.end(), ts->open.begin(), ts->open.end());
  }
  return out;
}

std::size_t SpanRecorder::thread_count() const {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  return threads_.size();
}

std::int64_t span_epoch_ns(const SpanRecorder& recorder) {
  return recorder.epoch_ns_;
}

// -- ChromeTraceWriter ----------------------------------------------------

void ChromeTraceWriter::add_process_name(int pid, const std::string& name) {
  events_.push_back("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
                    json_escape(name) + "\"}}");
}

void ChromeTraceWriter::add_thread_name(int pid, int tid,
                                        const std::string& name) {
  events_.push_back("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid) +
                    ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                    json_escape(name) + "\"}}");
}

void ChromeTraceWriter::add_complete_event(const std::string& name,
                                           const std::string& category,
                                           int pid, int tid, double ts_us,
                                           double dur_us,
                                           const std::string& args_json) {
  std::string ev = "{\"ph\":\"X\",\"name\":\"" + json_escape(name) +
                   "\",\"cat\":\"" + json_escape(category) +
                   "\",\"pid\":" + std::to_string(pid) +
                   ",\"tid\":" + std::to_string(tid) + ",\"ts\":" +
                   fmt_us(ts_us) + ",\"dur\":" + fmt_us(dur_us);
  if (!args_json.empty()) ev += ",\"args\":" + args_json;
  ev += "}";
  events_.push_back(std::move(ev));
}

void ChromeTraceWriter::add_instant_event(const std::string& name,
                                          const std::string& category,
                                          int pid, int tid, double ts_us,
                                          const std::string& args_json) {
  std::string ev = "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" +
                   json_escape(name) + "\",\"cat\":\"" +
                   json_escape(category) + "\",\"pid\":" +
                   std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                   ",\"ts\":" + fmt_us(ts_us);
  if (!args_json.empty()) ev += ",\"args\":" + args_json;
  ev += "}";
  events_.push_back(std::move(ev));
}

void ChromeTraceWriter::add_spans(const SpanRecorder& recorder, int pid,
                                  const std::string& process_name) {
  add_process_name(pid, process_name);
  const std::int64_t epoch = span_epoch_ns(recorder);
  const auto spans = recorder.snapshot();
  std::uint32_t max_thread = 0;
  for (const SpanEvent& s : spans) max_thread = std::max(max_thread, s.thread);
  const std::size_t lanes =
      std::max<std::size_t>(recorder.thread_count(), max_thread + 1);
  for (std::size_t t = 0; t < lanes; ++t)
    add_thread_name(pid, static_cast<int>(t),
                    t == 0 ? "main" : "worker " + std::to_string(t));
  for (const SpanEvent& s : spans) {
    std::string args;
    if (s.arg_key != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "{\"%s\":%g}", s.arg_key, s.arg_value);
      args = buf;
    }
    add_complete_event(s.name, s.category, pid, static_cast<int>(s.thread),
                       static_cast<double>(s.start_ns - epoch) / 1e3,
                       static_cast<double>(s.duration_ns) / 1e3, args);
  }
}

void ChromeTraceWriter::add_tracer_events(const EventTracer& tracer,
                                          std::int64_t epoch_ns, int pid,
                                          int tid,
                                          const std::string& lane_name) {
  add_thread_name(pid, tid, lane_name);
  for (const TraceEvent& ev : tracer.snapshot()) {
    char args[192];
    std::snprintf(args, sizeof(args),
                  "{\"flow\":%llu,\"class\":%u,\"src\":%u,\"dst\":%u,"
                  "\"utilization\":%g,\"reason\":\"%s\"}",
                  static_cast<unsigned long long>(ev.flow_id), ev.class_index,
                  ev.src, ev.dst, ev.utilization,
                  json_escape(ev.reason).c_str());
    add_instant_event(to_string(ev.kind), "admission", pid, tid,
                      static_cast<double>(ev.timestamp_ns - epoch_ns) / 1e3,
                      args);
  }
}

std::string ChromeTraceWriter::to_json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i) out += ",";
    out += "\n";
    out += events_[i];
  }
  out += "\n]}\n";
  return out;
}

void ChromeTraceWriter::write(const std::string& path) const {
  write_file(path, to_json());
}

}  // namespace ubac::telemetry
