#include "telemetry/http_endpoint.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "telemetry/alerts.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/timeseries.hpp"

namespace ubac::telemetry {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    default: return "Error";
  }
}

int from_hex(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string url_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && from_hex(s[i + 1]) >= 0 &&
               from_hex(s[i + 2]) >= 0) {
      out += static_cast<char>(from_hex(s[i + 1]) * 16 + from_hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Fold "a=1&b=x%20y" into the request's query map (later keys win).
void parse_form_pairs(const std::string& qs, HttpRequest& request) {
  std::size_t pos = 0;
  while (pos <= qs.size()) {
    auto amp = qs.find('&', pos);
    if (amp == std::string::npos) amp = qs.size();
    const std::string pair = qs.substr(pos, amp - pos);
    if (!pair.empty()) {
      const auto eq = pair.find('=');
      if (eq == std::string::npos)
        request.query[url_decode(pair)] = "";
      else
        request.query[url_decode(pair.substr(0, eq))] =
            url_decode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
}

/// Split "GET /series?name=x&window=3 HTTP/1.1" into an HttpRequest.
bool parse_request_line(const std::string& line, HttpRequest& request) {
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const auto sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const auto qmark = target.find('?');
  if (qmark != std::string::npos) {
    parse_form_pairs(target.substr(qmark + 1), request);
    target.resize(qmark);
  }
  request.path = url_decode(target);
  return !request.method.empty() && !request.path.empty();
}

/// Content-Length from the raw header block, 0 when absent or malformed.
std::size_t parse_content_length(const std::string& headers) {
  std::size_t pos = 0;
  while (pos < headers.size()) {
    auto eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::string line = headers.substr(pos, eol - pos);
    const auto colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      for (char& c : key) c = static_cast<char>(std::tolower(c));
      if (key == "content-length") {
        char* end = nullptr;
        const unsigned long long n =
            std::strtoull(line.c_str() + colon + 1, &end, 10);
        return end == nullptr ? 0 : static_cast<std::size_t>(n);
      }
    }
    pos = eol + 2;
  }
  return 0;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& response) {
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                response.status, status_text(response.status),
                response.content_type.c_str(), response.body.size());
  send_all(fd, header + response.body);
}

}  // namespace

HttpEndpoint::HttpEndpoint() : HttpEndpoint(Options()) {}

HttpEndpoint::HttpEndpoint(Options options) : options_(std::move(options)) {}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::handle(std::string path, Handler handler) {
  if (running())
    throw std::logic_error("HttpEndpoint: add routes before start()");
  routes_.emplace_back(std::move(path), std::move(handler));
}

void HttpEndpoint::start() {
  if (running()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("HttpEndpoint: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpEndpoint: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpEndpoint: cannot bind " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + " (" +
                             std::strerror(err) + ")");
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpEndpoint: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false, std::memory_order_release);
  const std::size_t workers = options_.workers == 0 ? 1 : options_.workers;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void HttpEndpoint::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock every accept(): shutdown makes pending and future accepts
  // fail immediately; close releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpEndpoint::worker_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener is gone
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpEndpoint::serve_connection(int fd) {
  // Keep a slow client from parking a worker forever.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string data;
  char buf[2048];
  while (data.find("\r\n\r\n") == std::string::npos) {
    if (data.size() > options_.max_request_bytes) {
      send_response(fd, HttpResponse::text("request too large\n", 431));
      served_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // disconnect or timeout before a full header
    data.append(buf, static_cast<std::size_t>(n));
  }

  HttpRequest request;
  const std::string request_line = data.substr(0, data.find("\r\n"));
  HttpResponse response;
  if (!parse_request_line(request_line, request)) {
    response = HttpResponse::text("bad request\n", 400);
  } else if (request.method != "GET" && request.method != "HEAD" &&
             request.method != "POST") {
    response = HttpResponse::text("only GET/HEAD/POST are supported\n", 405);
  } else {
    if (request.method == "POST") {
      const std::size_t header_end = data.find("\r\n\r\n") + 4;
      const std::size_t want =
          parse_content_length(data.substr(0, header_end));
      if (want > options_.max_request_bytes) {
        send_response(fd, HttpResponse::text("request too large\n", 431));
        served_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      while (data.size() - header_end < want) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) return;  // disconnect or timeout mid-body
        data.append(buf, static_cast<std::size_t>(n));
      }
      request.body = data.substr(header_end, want);
      // A form-urlencoded body is just a query string by another name;
      // fold it into the same map so handlers serve both verbs.
      parse_form_pairs(request.body, request);
    }
    response = HttpResponse::text("not found\n", 404);
    for (const auto& [path, handler] : routes_)
      if (path == request.path) {
        try {
          response = handler(request);
        } catch (const std::exception& e) {
          response = HttpResponse::text(
              std::string("handler error: ") + e.what() + "\n", 500);
        }
        break;
      }
    if (request.method == "HEAD") response.body.clear();
  }
  send_response(fd, response);
  served_.fetch_add(1, std::memory_order_relaxed);
}

void install_standard_routes(HttpEndpoint& endpoint,
                             MetricsRegistry& registry,
                             TelemetrySampler* sampler, AlertEngine* alerts) {
  endpoint.handle("/metrics", [&registry](const HttpRequest&) {
    HttpResponse r = HttpResponse::text(to_prometheus(registry.snapshot()));
    // The version suffix tells scrapers this is exposition format 0.0.4.
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  });

  const std::int64_t start_ns = EventTracer::now_ns();
  endpoint.handle("/healthz", [sampler, start_ns](const HttpRequest&) {
    char buf[192];
    std::snprintf(
        buf, sizeof(buf),
        "{\"status\":\"ok\",\"uptime_s\":%.3f,\"sampler_ticks\":%llu,"
        "\"series\":%zu}\n",
        static_cast<double>(EventTracer::now_ns() - start_ns) / 1e9,
        static_cast<unsigned long long>(sampler ? sampler->ticks() : 0),
        sampler ? sampler->store().series_count() : std::size_t{0});
    return HttpResponse::json(buf);
  });

  endpoint.handle("/series", [sampler](const HttpRequest& request) {
    if (sampler == nullptr)
      return HttpResponse::text("no sampler running\n", 404);
    const std::string name = request.query_get("name");
    if (name.empty()) {
      // No name: index of what can be asked for — every registered
      // series name with its label-set count and ring geometry.
      const TimeSeriesStore& store = sampler->store();
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"window_capacity\":%zu,\"ticks_per_window\":%zu,"
                    "\"series\":[",
                    store.window_capacity(), store.ticks_per_window());
      std::string out = buf;
      const auto idx = store.index();
      for (std::size_t i = 0; i < idx.size(); ++i) {
        if (i) out += ",";
        out += "\n {\"name\":\"" + json_escape(idx[i].name) + "\"";
        std::snprintf(buf, sizeof(buf),
                      ",\"series\":%zu,\"windows_started\":%llu}",
                      idx[i].series,
                      static_cast<unsigned long long>(idx[i].windows_started));
        out += buf;
      }
      out += "\n]}\n";
      return HttpResponse::json(std::move(out));
    }
    std::size_t window = 0;
    const std::string window_arg = request.query_get("window");
    if (!window_arg.empty()) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(window_arg.c_str(), &end, 10);
      if (end == nullptr || *end != '\0')
        return HttpResponse::text("bad window\n", 400);
      window = static_cast<std::size_t>(parsed);
    }
    return HttpResponse::json(sampler->store().to_json(name, window) + "\n");
  });

  endpoint.handle("/alerts", [alerts](const HttpRequest&) {
    if (alerts == nullptr)
      return HttpResponse::text("no alert engine running\n", 404);
    return HttpResponse::json(alerts->to_json() + "\n");
  });

  endpoint.handle("/alerts/config", [alerts](const HttpRequest& request) {
    if (alerts == nullptr)
      return HttpResponse::text("no alert engine running\n", 404);
    if (request.method == "POST") {
      const std::string rule = request.query_get("rule");
      if (rule.empty())
        return HttpResponse::text("missing rule=<name>\n", 400);
      AlertRuleConfig config;
      bool any = false;
      const auto parse_double = [&](const char* key,
                                    std::optional<double>& out) {
        const std::string arg = request.query_get(key);
        if (arg.empty()) return true;
        char* end = nullptr;
        const double v = std::strtod(arg.c_str(), &end);
        if (end == nullptr || *end != '\0') return false;
        out = v;
        any = true;
        return true;
      };
      const auto parse_ticks = [&](const char* key,
                                   std::optional<std::size_t>& out) {
        const std::string arg = request.query_get(key);
        if (arg.empty()) return true;
        char* end = nullptr;
        const unsigned long v = std::strtoul(arg.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') return false;
        out = static_cast<std::size_t>(v);
        any = true;
        return true;
      };
      if (!parse_double("threshold", config.threshold) ||
          !parse_ticks("for_ticks", config.for_ticks) ||
          !parse_ticks("resolve_ticks", config.resolve_ticks))
        return HttpResponse::text("bad parameter\n", 400);
      if (!any)
        return HttpResponse::text(
            "nothing to set (threshold/for_ticks/resolve_ticks)\n", 400);
      if (!alerts->configure_rule(rule, config))
        return HttpResponse::text("unknown rule " + rule + "\n", 404);
    }
    return HttpResponse::json(alerts->config_to_json() + "\n");
  });
}

}  // namespace ubac::telemetry
