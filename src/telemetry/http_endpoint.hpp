#pragma once

/// \file http_endpoint.hpp
/// \brief Embedded dependency-free HTTP/1.1 scrape endpoint.
///
/// A deliberately small blocking server — a listening socket plus a few
/// worker threads, each doing accept / read / dispatch / write / close —
/// sized for its actual load: one Prometheus scraper, a dashboard, and a
/// curl-wielding operator. Request handling never touches the admission
/// hot path; handlers read mutex-guarded snapshots (registry, rollup
/// store, alert engine) that the sampler keeps fresh.
///
/// Routes are registered per exact path; the query string is parsed into
/// a key=value map. GET/HEAD/POST (405 otherwise), `Connection: close` on
/// every response. POST bodies are read up to Content-Length; a
/// form-urlencoded body is folded into the same query map handlers
/// already read, so one handler serves both verbs.
/// install_standard_routes() wires the standard endpoints:
///
///   /metrics        Prometheus text 0.0.4 of the registry (gauges fresh
///                   as of the last sampler tick)
///   /healthz        JSON liveness: sampler tick count, series count,
///                   uptime
///   /series         JSON rollups: ?name=<metric>[&window=<n>] (no name
///                   lists the available series names)
///   /alerts         AlertEngine status JSON (per-rule state, live
///                   threshold, actionable (server, class) payloads)
///   /alerts/config  GET: live rule thresholds/hysteresis; POST
///                   rule=<name>&threshold=…[&for_ticks=…]
///                   [&resolve_ticks=…] retunes a rule at runtime
///
/// Binding is loopback by default: this is an operational surface, not a
/// public one.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ubac::telemetry {

class AlertEngine;
class TelemetrySampler;

struct HttpRequest {
  std::string method;
  std::string path;  ///< without the query string
  std::map<std::string, std::string> query;
  std::string body;  ///< raw POST body (empty for GET/HEAD)

  std::string query_get(const std::string& key,
                        const std::string& def = "") const {
    const auto it = query.find(key);
    return it == query.end() ? def : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse text(std::string body, int status = 200) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
  static HttpResponse json(std::string body, int status = 200) {
    HttpResponse r;
    r.status = status;
    r.content_type = "application/json";
    r.body = std::move(body);
    return r;
  }
};

class HttpEndpoint {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after start()
    std::size_t workers = 2;
    int backlog = 16;
    /// Per-connection receive cap; oversized requests get 431.
    std::size_t max_request_bytes = 16 * 1024;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpEndpoint();
  explicit HttpEndpoint(Options options);
  ~HttpEndpoint();  ///< stops if still running

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Register `handler` for exact path `path`. Add routes before start().
  void handle(std::string path, Handler handler);

  /// Bind + listen + spawn the workers. Throws std::runtime_error when
  /// the socket cannot be bound.
  void start();
  /// Shut the listener down and join the workers. Idempotent.
  void stop();
  bool running() const { return !workers_.empty(); }

  /// The bound port (resolves ephemeral port 0); valid after start().
  std::uint16_t port() const { return port_; }

  /// Requests served (any status), total.
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  void serve_connection(int fd);

  Options options_;
  std::vector<std::pair<std::string, Handler>> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
};

/// Wire the standard telemetry routes (see file comment). `sampler` and
/// `alerts` may be null — /series and /alerts then report 404 with an
/// explanatory body. All referenced objects must outlive the endpoint.
void install_standard_routes(HttpEndpoint& endpoint,
                             MetricsRegistry& registry,
                             TelemetrySampler* sampler, AlertEngine* alerts);

}  // namespace ubac::telemetry
