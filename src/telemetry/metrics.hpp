#pragma once

/// \file metrics.hpp
/// \brief Lock-free metrics instruments and the process metrics registry.
///
/// The run-time admission hot path is a handful of relaxed atomic RMWs per
/// decision (see admission/controller.hpp); telemetry must not be slower
/// than the thing it observes. Every instrument here is therefore wait-free
/// on the update path:
///
///  * Counter          — monotonically increasing, exact. Updates go to one
///                       of kStripes cache-line-padded atomic cells chosen
///                       by a per-thread index, so concurrent writers do
///                       not contend; value() sums the stripes.
///  * Gauge            — last-set-wins double (one relaxed atomic store).
///  * LatencyHistogram — fixed upper-bound buckets (Prometheus `le`
///                       semantics: a sample lands in the first bucket
///                       whose bound is >= the value, inclusive), with
///                       striped bucket/count/sum cells. Counts are exact;
///                       sum is exact for any sequence of adds because each
///                       stripe is only merged at read time.
///
/// Instruments are registered in a MetricsRegistry keyed by
/// (name, labels); registration takes a mutex, updates never do. Naming
/// convention: `ubac_<subsystem>_<name>` with a unit suffix where
/// applicable (`_seconds`, `_total` for counters) — see
/// docs/observability.md for the inventory.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ubac::telemetry {

/// Ordered (key, value) label pairs attached to one series.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

inline constexpr std::size_t kStripes = 16;

/// Stable per-thread stripe index (threads hash to one of kStripes cells).
std::size_t stripe_index() noexcept;

struct alignas(64) U64Cell {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) F64Cell {
  std::atomic<double> v{0.0};

  void add(double x) noexcept {
    double cur = v.load(std::memory_order_relaxed);
    while (!v.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace detail

/// Exact monotonically increasing counter; wait-free striped updates.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  detail::U64Cell cells_[detail::kStripes];
};

/// Last-set-wins double gauge.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus cumulative-export semantics.
/// Bucket i holds samples with value <= bounds[i] (and > bounds[i-1]);
/// samples above the last bound land in the implicit +Inf bucket.
class LatencyHistogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit LatencyHistogram(std::vector<double> upper_bounds);

  void record(double v) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1, the
  /// last entry being the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Approximate quantile (linear interpolation inside the bucket,
  /// Prometheus-style). Returns 0 when empty.
  double quantile(double q) const;

  /// n strictly increasing bounds spanning [lo, hi] geometrically.
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                std::size_t n);

 private:
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Stripe> stripes_;
};

enum class InstrumentKind { kCounter, kGauge, kHistogram };

const char* to_string(InstrumentKind kind);

/// Point-in-time copy of one histogram's state.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< non-cumulative, +Inf last
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// One series of a family at snapshot time.
struct MetricSample {
  Labels labels;
  double value = 0.0;           ///< counter / gauge value
  HistogramSnapshot histogram;  ///< populated for kHistogram only
};

struct MetricFamily {
  std::string name;
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::vector<MetricSample> samples;
};

/// Consistent-enough copy of every registered instrument (each instrument
/// is read atomically; cross-instrument skew is possible under concurrent
/// updates, exactness holds at quiescence).
struct MetricsSnapshot {
  std::vector<MetricFamily> families;

  /// Sample lookup by name + labels; nullptr when absent.
  const MetricSample* find(const std::string& name,
                           const Labels& labels = {}) const;
};

/// Named instrument registry. Registration is get-or-create keyed on
/// (name, labels) and mutex-guarded; the returned references stay valid
/// for the registry's lifetime and their update paths are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  LatencyHistogram& histogram(const std::string& name, const std::string& help,
                              std::vector<double> upper_bounds,
                              const Labels& labels = {});

  MetricsSnapshot snapshot() const;

  /// Process-wide registry for tools that want a single sink.
  static MetricsRegistry& global();

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    InstrumentKind kind;
    std::vector<std::unique_ptr<Series>> series;
  };

  Family& family(const std::string& name, const std::string& help,
                 InstrumentKind kind);
  Series& series(Family& fam, const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace ubac::telemetry
