#pragma once

/// \file conformance.hpp
/// \brief Observed-vs-declared demand conformance checking.
///
/// The paper's utilization bounds (PAPER.md, §3) are only as good as the
/// declared leaky buckets: a flow offering more than its (T, ρ) erodes
/// the verified guarantee for everyone sharing its links. The
/// ConformanceMonitor closes that observability gap. Each check() pass
/// reads the ArrivalRecorder's live windows (envelope.hpp) and, per flow:
///
///   * forms the empirical envelope Ê(I) over I ∈ {10ms, 100ms, 1s, 10s},
///   * compares it against the declared envelope
///       E(I) = min{C·I, T + ρ·I}
///     of the flow's service class,
///   * scores the flow with a token-bucket conformance margin
///       margin = 1 − max_I Ê(I) / E(I)
///     (1 = idle, 0 = exactly at the declared envelope, negative =
///     misdeclaring; a flow is *violating* when margin < threshold,
///     default 0 — safe because the recorder only ever undercounts),
///
/// then aggregates per-(server, class) observed utilization against the
/// verified α·C share via a placement callback into the admission ledger.
///
/// Results surface everywhere the rest of the telemetry stack already
/// reaches: `ubac_conformance_*` metrics, kConformance tracer instants
/// ("conformance:violation" / "conformance:clear") and a
/// "conformance.check" span per pass, the `misdeclaration` AlertRule
/// (alerts.hpp) whose actionable payload carries the top-k offending
/// flow ids, and the /conformance + /conformance/flows HTTP routes
/// (install_conformance_routes). check() is not hot-path code: it runs
/// mutex-guarded on the sampler tick.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/envelope.hpp"
#include "traffic/flow.hpp"
#include "traffic/leaky_bucket.hpp"

namespace ubac::telemetry {

class EventTracer;
class HttpEndpoint;
class MetricsRegistry;
class Counter;
class Gauge;
class LatencyHistogram;

/// One flow's conformance score as of the latest check() that saw it.
struct FlowConformance {
  traffic::FlowId flow_id = 0;
  std::uint32_t class_index = 0;
  bool live = true;        ///< still registered with the recorder
  bool violating = false;  ///< margin < threshold (frozen at release)
  double margin = 1.0;     ///< 1 - worst_ratio, current
  double worst_margin = 1.0;  ///< min margin over the flow's lifetime
  double worst_ratio = 0.0;   ///< max_I Ê(I)/E(I), current
  double observed_bps = 0.0;  ///< sustained rate over the largest window
  double declared_bps = 0.0;  ///< the class ρ
  std::int64_t first_seen_ns = 0;
  std::int64_t last_check_ns = 0;
};

/// Observed load vs the verified share of one (server, class) budget.
struct BudgetConformance {
  std::uint32_t server = 0;
  std::uint32_t class_index = 0;
  double observed_bps = 0.0;  ///< sum of crossing flows' sustained rates
  double share_bps = 0.0;     ///< verified α·C share (0 when not wired)
  double ratio = 0.0;         ///< observed / share (0 when share unknown)
};

class ConformanceMonitor {
 public:
  struct Options {
    /// `ubac_conformance_*` instruments land here (optional, not owned).
    MetricsRegistry* metrics = nullptr;
    /// Violation/clear transitions are mirrored here as kConformance
    /// instants (optional, not owned).
    EventTracer* tracer = nullptr;
    /// A flow is violating when its margin drops below this. 0 is exact:
    /// the estimator never overcounts, so a conformant flow sits at
    /// margin ≥ 0 on every window.
    double margin_threshold = 0.0;
    /// Retained scores (live + released); released conformant flows are
    /// pruned first, then the oldest released violators.
    std::size_t max_retained = 8192;
  };

  /// `recorder` must outlive the monitor.
  explicit ConformanceMonitor(const ArrivalRecorder& recorder)
      : ConformanceMonitor(recorder, Options()) {}
  ConformanceMonitor(const ArrivalRecorder& recorder, Options options);

  /// Declared envelope of `class_index`: T and ρ from the class bucket;
  /// `line_rate_bps` > 0 additionally applies the C·I peak-rate cap.
  void set_class_envelope(std::uint32_t class_index,
                          traffic::LeakyBucket bucket,
                          double line_rate_bps = 0.0);

  /// Placement callback for the per-(server, class) aggregation: fill
  /// `servers` with the hops of `flow_id`'s route, return false for
  /// unknown flows. Called under the monitor mutex on the check thread.
  using PlacementFn =
      std::function<bool(traffic::FlowId, std::vector<std::uint32_t>&)>;
  void set_placement(PlacementFn placement);

  /// Verified α·C share of (server, class), for the observed/declared
  /// utilization ratio.
  void set_share(std::uint32_t server, std::uint32_t class_index,
                 double share_bps);

  /// One conformance pass over every registered flow, evaluated at
  /// `now_ns` (the recorder's clock domain). Runs under the monitor
  /// mutex; wrapped in a "conformance.check" span.
  void check(std::int64_t now_ns);

  // -- queries (thread-safe) ---------------------------------------------

  std::uint64_t checks() const;
  /// Scores currently retained (live + released).
  std::size_t flows_seen() const;
  std::size_t live_flows() const;
  std::size_t violating_count() const;
  /// Worst margin across all retained flows (1.0 when none).
  double worst_margin() const;

  /// Violating flows, worst margin first. `threshold` overrides the
  /// configured margin threshold for *live* flows (the misdeclaration
  /// rule passes its live-tunable threshold through here); released
  /// flows keep their frozen verdict.
  std::vector<FlowConformance> violating_flows(
      std::optional<double> threshold = std::nullopt) const;

  /// The `top` worst-margin flows (all when top = 0), worst first.
  std::vector<FlowConformance> flows(std::size_t top = 0) const;

  /// Per-budget aggregation from the latest check().
  std::vector<BudgetConformance> budgets() const;

  /// JSON for GET /conformance: config, totals, worst margin, budgets.
  std::string to_json() const;
  /// JSON for GET /conformance/flows?top=k: worst-first flow scores.
  std::string flows_to_json(std::size_t top = 0) const;

 private:
  struct ClassEnvelope {
    traffic::LeakyBucket bucket{0.0, 1.0};  // placeholder until wired
    double line_rate_bps = 0.0;
  };

  void prune_locked();

  const ArrivalRecorder& recorder_;
  Options options_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint32_t, ClassEnvelope> envelopes_;
  PlacementFn placement_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> shares_;
  std::unordered_map<traffic::FlowId, FlowConformance> scores_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, BudgetConformance>
      budgets_;
  std::uint64_t checks_ = 0;
  std::vector<ArrivalRecorder::FlowWindows> scratch_;

  // resolved once when metrics are wired
  Gauge* flows_gauge_ = nullptr;
  Gauge* live_gauge_ = nullptr;
  Gauge* violating_gauge_ = nullptr;
  Gauge* worst_margin_gauge_ = nullptr;
  Gauge* dropped_gauge_ = nullptr;
  Counter* checks_total_ = nullptr;
  LatencyHistogram* worst_margin_hist_ = nullptr;
};

/// Wire GET /conformance and /conformance/flows?top=k onto `endpoint`.
/// `monitor` must outlive the endpoint; add before start().
void install_conformance_routes(HttpEndpoint& endpoint,
                                const ConformanceMonitor& monitor);

}  // namespace ubac::telemetry
