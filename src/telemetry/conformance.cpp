#include "telemetry/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "telemetry/alerts.hpp"
#include "telemetry/event_trace.hpp"
#include "telemetry/http_endpoint.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace ubac::telemetry {
namespace {

// Static reason strings for the kConformance tracer mirrors; the schema
// checker (tools/check_trace_schema.py) keeps this set closed.
constexpr const char* kReasonViolation = "conformance:violation";
constexpr const char* kReasonClear = "conformance:clear";

/// Margin histogram bounds: margins live in (-inf, 1], negative =
/// misdeclaring, so the buckets resolve both polarities around 0.
std::vector<double> margin_bounds() {
  return {-4.0, -2.0, -1.0, -0.5, -0.25, -0.1, -0.05, -0.01,
          0.0,  0.01, 0.05, 0.1,  0.25,  0.5,  1.0};
}

bool worse(const FlowConformance& a, const FlowConformance& b) {
  if (a.margin != b.margin) return a.margin < b.margin;
  if (a.worst_margin != b.worst_margin) return a.worst_margin < b.worst_margin;
  return a.flow_id < b.flow_id;
}

void append_flow_json(std::string& out, const FlowConformance& f) {
  char buf[320];
  const double age_s =
      static_cast<double>(f.last_check_ns - f.first_seen_ns) * 1e-9;
  std::snprintf(buf, sizeof buf,
                "{\"flow\":%llu,\"class\":%u,\"live\":%s,\"violating\":%s,"
                "\"margin\":%.9g,\"worst_margin\":%.9g,\"ratio\":%.9g,"
                "\"observed_bps\":%.9g,\"declared_bps\":%.9g,\"age_s\":%.3f}",
                static_cast<unsigned long long>(f.flow_id), f.class_index,
                f.live ? "true" : "false", f.violating ? "true" : "false",
                f.margin, f.worst_margin, f.worst_ratio, f.observed_bps,
                f.declared_bps, age_s < 0.0 ? 0.0 : age_s);
  out += buf;
}

}  // namespace

ConformanceMonitor::ConformanceMonitor(const ArrivalRecorder& recorder,
                                       Options options)
    : recorder_(recorder), options_(options) {
  if (options_.metrics) {
    MetricsRegistry& m = *options_.metrics;
    flows_gauge_ = &m.gauge("ubac_conformance_flows",
                            "Flow conformance scores retained (live flows "
                            "plus released violators)");
    live_gauge_ = &m.gauge("ubac_conformance_live_flows",
                           "Flows currently registered with the recorder");
    violating_gauge_ =
        &m.gauge("ubac_conformance_violating_flows",
                 "Flows whose conformance margin is below the threshold");
    worst_margin_gauge_ =
        &m.gauge("ubac_conformance_worst_margin",
                 "Worst token-bucket conformance margin across all flows "
                 "(1 idle, 0 at the declared envelope, negative violating)");
    dropped_gauge_ =
        &m.gauge("ubac_conformance_dropped_registrations",
                 "Flow registrations refused by the recorder's slot table");
    checks_total_ = &m.counter("ubac_conformance_checks_total",
                               "Conformance passes over the recorder");
    worst_margin_hist_ = &m.histogram(
        "ubac_conformance_worst_margin_hist",
        "Per-check distribution of the worst conformance margin",
        margin_bounds());
  }
}

void ConformanceMonitor::set_class_envelope(std::uint32_t class_index,
                                            traffic::LeakyBucket bucket,
                                            double line_rate_bps) {
  std::lock_guard<std::mutex> lock(mutex_);
  envelopes_[class_index] = ClassEnvelope{bucket, line_rate_bps};
}

void ConformanceMonitor::set_placement(PlacementFn placement) {
  std::lock_guard<std::mutex> lock(mutex_);
  placement_ = std::move(placement);
}

void ConformanceMonitor::set_share(std::uint32_t server,
                                   std::uint32_t class_index,
                                   double share_bps) {
  std::lock_guard<std::mutex> lock(mutex_);
  shares_[{server, class_index}] = share_bps;
}

void ConformanceMonitor::check(std::int64_t now_ns) {
  UBAC_SPAN("conformance.check", "conformance");
  std::lock_guard<std::mutex> lock(mutex_);
  ++checks_;
  scratch_.clear();
  recorder_.collect(now_ns, scratch_);

  for (auto& entry : scores_) entry.second.live = false;
  budgets_.clear();

  std::vector<std::uint32_t> servers;
  for (const ArrivalRecorder::FlowWindows& fw : scratch_) {
    FlowConformance& score = scores_[fw.flow_id];
    if (score.first_seen_ns == 0) {
      score.flow_id = fw.flow_id;
      score.class_index = fw.class_index;
      score.first_seen_ns = now_ns;
    }
    score.live = true;
    score.last_check_ns = now_ns;

    double worst_ratio = 0.0;
    const auto env_it = envelopes_.find(fw.class_index);
    if (env_it != envelopes_.end()) {
      const ClassEnvelope& env = env_it->second;
      score.declared_bps = env.bucket.rate;
      for (std::size_t s = 0; s < ArrivalRecorder::kScales; ++s) {
        const double interval =
            static_cast<double>(ArrivalRecorder::kWindowNs[s]) * 1e-9;
        double declared = env.bucket.burst + env.bucket.rate * interval;
        if (env.line_rate_bps > 0.0)
          declared = std::min(declared, env.line_rate_bps * interval);
        if (declared <= 0.0) continue;
        worst_ratio = std::max(worst_ratio, fw.window_bits[s] / declared);
      }
    }
    score.worst_ratio = worst_ratio;
    score.margin = 1.0 - worst_ratio;
    score.worst_margin = std::min(score.worst_margin, score.margin);

    const bool was_violating = score.violating;
    // kEps absorbs the double-rounding of the declared envelope so a flow
    // offering *exactly* (T, rho) cannot land at margin = -1ulp.
    constexpr double kEps = 1e-9;
    score.violating = score.margin < options_.margin_threshold - kEps;
    if (options_.tracer && was_violating != score.violating) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kConformance;
      ev.flow_id = score.flow_id;
      ev.class_index = score.class_index;
      ev.utilization = score.margin;
      ev.reason = score.violating ? kReasonViolation : kReasonClear;
      options_.tracer->record(ev);
    }

    // Sustained observed rate: the largest window holds at most its own
    // span of traffic, less when the flow is younger than the window.
    const double largest_s =
        static_cast<double>(
            ArrivalRecorder::kWindowNs[ArrivalRecorder::kScales - 1]) *
        1e-9;
    const double smallest_s =
        static_cast<double>(ArrivalRecorder::kWindowNs[0]) * 1e-9;
    double span_s = largest_s;
    if (fw.registered_ns > 0 && fw.registered_ns < now_ns)
      span_s = std::min(
          largest_s,
          std::max(smallest_s,
                   static_cast<double>(now_ns - fw.registered_ns) * 1e-9));
    score.observed_bps =
        fw.window_bits[ArrivalRecorder::kScales - 1] / span_s;

    if (placement_) {
      servers.clear();
      if (placement_(fw.flow_id, servers)) {
        for (const std::uint32_t server : servers) {
          BudgetConformance& budget = budgets_[{server, fw.class_index}];
          budget.server = server;
          budget.class_index = fw.class_index;
          budget.observed_bps += score.observed_bps;
        }
      }
    }
  }

  // Released conformant flows are dropped; released violators retained
  // (misdeclaration is a property of the flow, and the alert/HTTP
  // consumers want offenders to stay visible across churn).
  for (auto it = scores_.begin(); it != scores_.end();)
    it = (!it->second.live && !it->second.violating) ? scores_.erase(it)
                                                     : std::next(it);
  prune_locked();

  std::size_t live = 0, violating = 0;
  double worst = 1.0;
  for (const auto& entry : scores_) {
    const FlowConformance& score = entry.second;
    live += score.live ? 1 : 0;
    violating += score.violating ? 1 : 0;
    worst = std::min(worst, score.live ? score.margin : score.worst_margin);
  }

  for (auto& entry : budgets_) {
    BudgetConformance& budget = entry.second;
    const auto share_it = shares_.find(entry.first);
    if (share_it != shares_.end() && share_it->second > 0.0) {
      budget.share_bps = share_it->second;
      budget.ratio = budget.observed_bps / budget.share_bps;
    }
    if (options_.metrics)
      options_.metrics
          ->gauge("ubac_conformance_observed_declared_ratio",
                  "Observed utilization of a (server, class) budget as a "
                  "fraction of its verified alpha*C share",
                  {{"server", std::to_string(budget.server)},
                   {"class", std::to_string(budget.class_index)}})
          .set(budget.ratio);
  }

  if (checks_total_) checks_total_->add();
  if (flows_gauge_) flows_gauge_->set(static_cast<double>(scores_.size()));
  if (live_gauge_) live_gauge_->set(static_cast<double>(live));
  if (violating_gauge_)
    violating_gauge_->set(static_cast<double>(violating));
  if (worst_margin_gauge_) worst_margin_gauge_->set(worst);
  if (dropped_gauge_)
    dropped_gauge_->set(
        static_cast<double>(recorder_.dropped_registrations()));
  if (worst_margin_hist_) worst_margin_hist_->record(worst);
}

void ConformanceMonitor::prune_locked() {
  if (scores_.size() <= options_.max_retained) return;
  // Over budget: evict the oldest released violators (live flows stay).
  std::vector<std::pair<std::int64_t, traffic::FlowId>> released;
  for (const auto& entry : scores_)
    if (!entry.second.live)
      released.emplace_back(entry.second.last_check_ns, entry.first);
  std::sort(released.begin(), released.end());
  for (const auto& victim : released) {
    if (scores_.size() <= options_.max_retained) break;
    scores_.erase(victim.second);
  }
}

std::uint64_t ConformanceMonitor::checks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checks_;
}

std::size_t ConformanceMonitor::flows_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scores_.size();
}

std::size_t ConformanceMonitor::live_flows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const auto& entry : scores_) live += entry.second.live ? 1 : 0;
  return live;
}

std::size_t ConformanceMonitor::violating_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t violating = 0;
  for (const auto& entry : scores_)
    violating += entry.second.violating ? 1 : 0;
  return violating;
}

double ConformanceMonitor::worst_margin() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double worst = 1.0;
  for (const auto& entry : scores_)
    worst = std::min(worst, entry.second.worst_margin);
  return worst;
}

std::vector<FlowConformance> ConformanceMonitor::violating_flows(
    std::optional<double> threshold) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlowConformance> out;
  for (const auto& entry : scores_) {
    const FlowConformance& score = entry.second;
    constexpr double kEps = 1e-9;  // same slack as check()
    const bool hit = (score.live && threshold.has_value())
                         ? score.margin < *threshold - kEps
                         : score.violating;
    if (hit) out.push_back(score);
  }
  std::sort(out.begin(), out.end(), worse);
  return out;
}

std::vector<FlowConformance> ConformanceMonitor::flows(
    std::size_t top) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlowConformance> out;
  out.reserve(scores_.size());
  for (const auto& entry : scores_) out.push_back(entry.second);
  std::sort(out.begin(), out.end(), worse);
  if (top != 0 && out.size() > top) out.resize(top);
  return out;
}

std::vector<BudgetConformance> ConformanceMonitor::budgets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BudgetConformance> out;
  out.reserve(budgets_.size());
  for (const auto& entry : budgets_) out.push_back(entry.second);
  return out;
}

std::string ConformanceMonitor::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0, violating = 0;
  double worst = 1.0;
  for (const auto& entry : scores_) {
    live += entry.second.live ? 1 : 0;
    violating += entry.second.violating ? 1 : 0;
    worst = std::min(worst, entry.second.worst_margin);
  }
  char buf[320];
  std::string out = "{";
  std::snprintf(buf, sizeof buf,
                "\"checks\":%llu,\"flows\":%zu,\"live\":%zu,"
                "\"violating\":%zu,\"worst_margin\":%.9g,"
                "\"threshold\":%.9g,\"dropped_registrations\":%llu,"
                "\"window_ns\":[",
                static_cast<unsigned long long>(checks_), scores_.size(),
                live, violating, worst, options_.margin_threshold,
                static_cast<unsigned long long>(
                    recorder_.dropped_registrations()));
  out += buf;
  for (std::size_t s = 0; s < ArrivalRecorder::kScales; ++s) {
    std::snprintf(buf, sizeof buf, "%s%lld", s ? "," : "",
                  static_cast<long long>(ArrivalRecorder::kWindowNs[s]));
    out += buf;
  }
  out += "],\"budgets\":[";
  bool first = true;
  for (const auto& entry : budgets_) {
    const BudgetConformance& budget = entry.second;
    std::snprintf(buf, sizeof buf,
                  "%s{\"server\":%u,\"class\":%u,\"observed_bps\":%.9g,"
                  "\"share_bps\":%.9g,\"ratio\":%.9g}",
                  first ? "" : ",", budget.server, budget.class_index,
                  budget.observed_bps, budget.share_bps, budget.ratio);
    out += buf;
    first = false;
  }
  out += "]}\n";
  return out;
}

std::string ConformanceMonitor::flows_to_json(std::size_t top) const {
  std::vector<FlowConformance> sorted = flows(top);
  std::size_t violating = 0;
  for (const FlowConformance& f : sorted) violating += f.violating ? 1 : 0;
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"count\":%zu,\"violating\":%zu,",
                sorted.size(), violating);
  std::string out = buf;
  out += "\"flows\":[";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ",";
    append_flow_json(out, sorted[i]);
  }
  out += "]}\n";
  return out;
}

AlertRule AlertEngine::misdeclaration_rule(const ConformanceMonitor* monitor,
                                           double margin_threshold,
                                           std::size_t k,
                                           std::size_t top_k) {
  AlertRule rule;
  rule.name = "misdeclaration";
  rule.description =
      "some admitted flow's observed arrival envelope exceeds its declared "
      "min{C*I, T+rho*I} (conformance margin below threshold)";
  rule.threshold = margin_threshold;
  rule.for_ticks = k;
  rule.resolve_ticks = k;
  rule.check = [monitor, top_k](const MetricsSnapshot&,
                                const TimeSeriesStore&,
                                double live_threshold)
      -> std::optional<AlertObservation> {
    const std::vector<FlowConformance> offenders =
        monitor->violating_flows(live_threshold);
    if (offenders.empty()) return std::nullopt;
    AlertObservation obs;
    obs.value = static_cast<double>(offenders.size());
    const std::size_t n = std::min(top_k, offenders.size());
    for (std::size_t i = 0; i < n; ++i) {
      AlertAction action;
      action.kind = AlertAction::Kind::kMisdeclaring;
      action.flow_id = offenders[i].flow_id;
      action.class_index = offenders[i].class_index;
      action.value = offenders[i].margin;
      obs.actions.push_back(action);
    }
    return obs;
  };
  return rule;
}

void install_conformance_routes(HttpEndpoint& endpoint,
                                const ConformanceMonitor& monitor) {
  endpoint.handle("/conformance", [&monitor](const HttpRequest&) {
    return HttpResponse::json(monitor.to_json());
  });
  endpoint.handle("/conformance/flows", [&monitor](const HttpRequest& req) {
    std::size_t top = 0;
    const std::string raw = req.query_get("top");
    if (!raw.empty()) {
      const long long parsed = std::strtoll(raw.c_str(), nullptr, 10);
      if (parsed < 0)
        return HttpResponse::text("top must be non-negative\n", 400);
      top = static_cast<std::size_t>(parsed);
    }
    return HttpResponse::json(monitor.flows_to_json(top));
  });
}

}  // namespace ubac::telemetry
