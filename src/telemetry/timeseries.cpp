#include "telemetry/timeseries.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "telemetry/alerts.hpp"
#include "telemetry/event_trace.hpp"
#include "telemetry/exporters.hpp"

namespace ubac::telemetry {

// -- RollupRing -------------------------------------------------------------

RollupRing::RollupRing(std::size_t capacity, std::size_t ticks_per_window)
    : capacity_(capacity), ticks_per_window_(ticks_per_window) {
  if (capacity_ == 0 || ticks_per_window_ == 0)
    throw std::invalid_argument("RollupRing: capacity and ticks_per_window "
                                "must be positive");
  ring_.resize(capacity_);
}

void RollupRing::observe(std::int64_t t_ns, double value, double raw_last) {
  const std::uint64_t window_index = ticks_ / ticks_per_window_;
  RollupWindow& w = ring_[window_index % capacity_];
  if (ticks_ % ticks_per_window_ == 0) {
    // First tick of a (possibly recycled) window: reset in place.
    w = RollupWindow{};
    w.start_ns = t_ns;
    w.min = value;
    w.max = value;
  } else {
    w.min = std::min(w.min, value);
    w.max = std::max(w.max, value);
  }
  w.end_ns = t_ns;
  w.last = raw_last;
  w.sum += value;
  ++w.count;
  ++ticks_;
}

std::uint64_t RollupRing::windows_started() const {
  return (ticks_ + ticks_per_window_ - 1) / ticks_per_window_;
}

std::vector<RollupWindow> RollupRing::windows(std::size_t max_windows) const {
  const std::uint64_t started = windows_started();
  std::uint64_t n = started < capacity_ ? started : capacity_;
  if (max_windows != 0 && n > max_windows) n = max_windows;
  std::vector<RollupWindow> out;
  out.reserve(n);
  for (std::uint64_t i = started - n; i < started; ++i)
    out.push_back(ring_[i % capacity_]);
  return out;
}

RollupWindow RollupRing::latest() const {
  if (ticks_ == 0) return RollupWindow{};
  return ring_[((ticks_ - 1) / ticks_per_window_) % capacity_];
}

// -- TimeSeriesStore --------------------------------------------------------

TimeSeriesStore::TimeSeriesStore(std::size_t windows,
                                 std::size_t ticks_per_window)
    : windows_(windows), ticks_per_window_(ticks_per_window) {
  // Validate eagerly rather than on the first ingested series.
  RollupRing probe(windows_, ticks_per_window_);
  (void)probe;
}

void TimeSeriesStore::ingest(const MetricsSnapshot& snapshot,
                             std::int64_t t_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const MetricFamily& family : snapshot.families) {
    for (const MetricSample& sample : family.samples) {
      switch (family.kind) {
        case InstrumentKind::kGauge:
          ingest_value(family.name, sample.labels, family.kind,
                       /*rate_derived=*/false, sample.value, t_ns);
          break;
        case InstrumentKind::kCounter:
          ingest_value(family.name, sample.labels, family.kind,
                       /*rate_derived=*/true, sample.value, t_ns);
          break;
        case InstrumentKind::kHistogram:
          // Histograms roll up through their event count (rate of
          // observations per second); bucket shapes stay with /metrics.
          ingest_value(family.name + "_count", sample.labels, family.kind,
                       /*rate_derived=*/true,
                       static_cast<double>(sample.histogram.count), t_ns);
          break;
      }
    }
  }
}

void TimeSeriesStore::ingest_value(const std::string& name,
                                   const Labels& labels, InstrumentKind kind,
                                   bool rate_derived, double value,
                                   std::int64_t t_ns) {
  auto& bucket = by_name_[name];
  Series* series = nullptr;
  for (auto& s : bucket)
    if (s->labels == labels) {
      series = s.get();
      break;
    }
  if (series == nullptr) {
    auto fresh = std::make_unique<Series>(
        Series{labels, kind, rate_derived, false, 0.0, 0,
               RollupRing(windows_, ticks_per_window_)});
    series = fresh.get();
    bucket.push_back(std::move(fresh));
  }

  double tick_sample = value;
  if (rate_derived) {
    if (!series->has_prev || t_ns <= series->prev_t_ns) {
      tick_sample = 0.0;  // first tick establishes the baseline
    } else {
      const double dt =
          static_cast<double>(t_ns - series->prev_t_ns) / 1e9;
      // Counters are monotone; a reset (registry swap) shows as a drop —
      // clamp to zero instead of reporting a huge negative rate.
      tick_sample = std::max(0.0, (value - series->prev_value) / dt);
    }
    series->prev_value = value;
    series->prev_t_ns = t_ns;
    series->has_prev = true;
  }
  series->ring.observe(t_ns, tick_sample, value);
}

std::vector<TimeSeriesStore::SeriesView> TimeSeriesStore::series(
    const std::string& name, std::size_t max_windows) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SeriesView> out;
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return out;
  for (const auto& s : it->second) {
    SeriesView view;
    view.name = name;
    view.labels = s->labels;
    view.kind = s->kind;
    view.rate_derived = s->rate_derived;
    view.windows = s->ring.windows(max_windows);
    out.push_back(std::move(view));
  }
  return out;
}

bool TimeSeriesStore::latest(const std::string& name, const Labels& labels,
                             RollupWindow& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return false;
  for (const auto& s : it->second)
    if (s->labels == labels && s->ring.ticks() > 0) {
      out = s->ring.latest();
      return true;
    }
  return false;
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, bucket] : by_name_) n += bucket.size();
  return n;
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, bucket] : by_name_) out.push_back(name);
  return out;
}

std::vector<TimeSeriesStore::SeriesIndexEntry> TimeSeriesStore::index()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SeriesIndexEntry> out;
  out.reserve(by_name_.size());
  for (const auto& [name, bucket] : by_name_) {  // map: already sorted
    SeriesIndexEntry entry;
    entry.name = name;
    entry.series = bucket.size();
    for (const auto& series : bucket)
      entry.windows_started =
          std::max(entry.windows_started, series->ring.windows_started());
    out.push_back(std::move(entry));
  }
  return out;
}

std::string TimeSeriesStore::to_json(const std::string& name,
                                     std::size_t max_windows) const {
  const auto views = series(name, max_windows);
  std::string out =
      "{\"name\":\"" + json_escape(name) + "\",\"series\":[";
  char buf[256];
  for (std::size_t i = 0; i < views.size(); ++i) {
    const SeriesView& view = views[i];
    if (i) out += ",";
    out += "\n {\"labels\":" + json_labels(view.labels) +
           ",\"kind\":\"" + to_string(view.kind) + "\",\"rate\":" +
           (view.rate_derived ? "true" : "false") + ",\"windows\":[";
    for (std::size_t w = 0; w < view.windows.size(); ++w) {
      const RollupWindow& win = view.windows[w];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"start_ns\":%lld,\"end_ns\":%lld,\"min\":%.9g,"
                    "\"max\":%.9g,\"avg\":%.9g,\"last\":%.9g,\"count\":%llu}",
                    w == 0 ? "" : ",", static_cast<long long>(win.start_ns),
                    static_cast<long long>(win.end_ns), win.min, win.max,
                    win.avg(), win.last,
                    static_cast<unsigned long long>(win.count));
      out += buf;
    }
    out += "]}";
  }
  out += "\n]}";
  return out;
}

// -- TelemetrySampler -------------------------------------------------------

TelemetrySampler::TelemetrySampler(MetricsRegistry& registry)
    : TelemetrySampler(registry, Options()) {}

TelemetrySampler::TelemetrySampler(MetricsRegistry& registry, Options options)
    : registry_(&registry), options_(options),
      store_(options.windows, options.ticks_per_window) {
  if (options_.tick.count() <= 0)
    throw std::invalid_argument("TelemetrySampler: tick must be positive");
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::add_tick_hook(std::function<void()> hook) {
  hooks_.push_back(std::move(hook));
}

void TelemetrySampler::add_post_alert_hook(std::function<void()> hook) {
  post_alert_hooks_.push_back(std::move(hook));
}

void TelemetrySampler::tick_now() {
  for (const auto& hook : hooks_) hook();
  const std::int64_t t_ns = EventTracer::now_ns();
  const MetricsSnapshot snapshot = registry_->snapshot();
  store_.ingest(snapshot, t_ns);
  if (alerts_ != nullptr) alerts_->evaluate(snapshot, store_, t_ns);
  for (const auto& hook : post_alert_hooks_) hook();
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void TelemetrySampler::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void TelemetrySampler::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void TelemetrySampler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    tick_now();
    lock.lock();
    cv_.wait_for(lock, options_.tick, [this] { return stop_requested_; });
  }
}

}  // namespace ubac::telemetry
