#include "telemetry/flight.hpp"

#include <cstdio>
#include <sstream>

namespace ubac::telemetry {

namespace {

std::string fmt_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

}  // namespace

FlightSnapshot FlightSnapshot::capture(const EventTracer* tracer,
                                       const MetricsRegistry* metrics,
                                       std::size_t max_events) {
  FlightSnapshot snapshot;
  snapshot.wall_ns = EventTracer::now_ns();
  if (tracer != nullptr) {
    snapshot.events = tracer->snapshot();
    if (snapshot.events.size() > max_events)
      snapshot.events.erase(
          snapshot.events.begin(),
          snapshot.events.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  if (SpanRecorder* recorder = SpanRecorder::active())
    snapshot.open_spans = recorder->open_spans();
  if (metrics != nullptr) {
    for (MetricFamily& family : metrics->snapshot().families)
      if (family.kind == InstrumentKind::kGauge)
        snapshot.gauges.push_back(std::move(family));
  }
  return snapshot;
}

std::string FlightSnapshot::to_text() const {
  std::ostringstream out;
  char buf[160];
  out << "-- last " << events.size() << " trace events (oldest first):\n";
  for (const TraceEvent& ev : events) {
    std::snprintf(buf, sizeof(buf),
                  "  [%llu] %s flow=%llu class=%u util=%.4f %s\n",
                  static_cast<unsigned long long>(ev.seq), to_string(ev.kind),
                  static_cast<unsigned long long>(ev.flow_id), ev.class_index,
                  ev.utilization, ev.reason);
    out << buf;
  }
  out << "-- open spans (" << open_spans.size() << "):\n";
  for (const OpenSpanInfo& span : open_spans) {
    out << "  thread " << span.thread << ": " << span.name << " ["
        << span.category << "]";
    if (span.arg_key != nullptr) {
      std::snprintf(buf, sizeof(buf), " %s=%g", span.arg_key, span.arg_value);
      out << buf;
    }
    out << "\n";
  }
  out << "-- gauges (" << gauges.size() << " families):\n";
  for (const MetricFamily& family : gauges) {
    for (const MetricSample& sample : family.samples) {
      std::snprintf(buf, sizeof(buf), "%g", sample.value);
      out << "  " << family.name << fmt_labels(sample.labels) << " = " << buf
          << "\n";
    }
  }
  return out.str();
}

}  // namespace ubac::telemetry
