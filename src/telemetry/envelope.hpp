#pragma once

/// \file envelope.hpp
/// \brief Lock-free per-flow empirical arrival-envelope estimation.
///
/// An ArrivalRecorder maintains, for every registered flow, a set of
/// multi-scale sliding arrival windows from which the ConformanceMonitor
/// (conformance.hpp) derives empirical envelopes Ê(I) over
/// I ∈ {10ms, 100ms, 1s, 10s} and checks them against the declared
/// leaky-bucket envelope min{C·I, T + ρ·I} (paper §3).
///
/// Each scale I is a ring of kBucketsPerScale sub-buckets of width
/// I / kBucketsPerScale; a bucket is an {epoch, units} atomic pair where
/// `epoch` is the absolute bucket number floor(t / width) and `units`
/// accumulates arrivals in 2^-10 bit granules — the same 2^-10 grid the
/// integer admission fast path reserves rates on (traffic/flow.hpp), so a
/// window sum divided by its span lands exactly on the RateUnits grid.
/// Summing the kBucketsPerScale newest buckets covers an actual time span
/// in (I - I/B, I], never more than I, so for traffic that satisfies
/// A[s,t] ≤ T + ρ(t-s) the window sum can never exceed T + ρ·I: a
/// conformant flow can never be falsely flagged. Arrivals are rounded
/// DOWN to the unit grid and a bucket-reset race between concurrent
/// writers may drop a few units — both err toward *under*-counting,
/// again the conservative direction for false positives.
///
/// Registration follows the admission hot path through a SpanRecorder
/// style global gate: `ArrivalRecorder::active()` is one acquire load,
/// which is the entire cost of admit/release when no recorder is
/// installed. Slots live in a fixed-size open-addressed table (bounded
/// linear probe, no allocation, no locks); a full probe window counts a
/// dropped registration rather than blocking the admit path.
///
/// A recorder is clock-domain agnostic but single-domain: feed it either
/// wall-clock EventTracer::now_ns() stamps (PacedLoadDriver offered
/// load) or sim-time nanoseconds (NetworkSim delivery), never both.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "traffic/flow.hpp"

namespace ubac::telemetry {

class ArrivalRecorder {
 public:
  /// Number of window scales maintained per flow.
  static constexpr std::size_t kScales = 4;
  /// Sub-buckets per scale; the sliding-window quantization error is one
  /// bucket, i.e. the measured span is within I/kBucketsPerScale of I.
  static constexpr std::size_t kBucketsPerScale = 16;
  /// The envelope windows I, smallest first: 10ms, 100ms, 1s, 10s.
  static constexpr std::int64_t kWindowNs[kScales] = {
      10'000'000, 100'000'000, 1'000'000'000, 10'000'000'000};

  struct Options {
    /// Flow-slot table size (rounded up to a power of two). Flows beyond
    /// capacity (or past the probe window) are dropped, not blocked on.
    std::size_t capacity = 4096;
  };

  ArrivalRecorder() : ArrivalRecorder(Options()) {}
  explicit ArrivalRecorder(Options options);

  ArrivalRecorder(const ArrivalRecorder&) = delete;
  ArrivalRecorder& operator=(const ArrivalRecorder&) = delete;

  // -- global gate (same pattern as SpanRecorder) ------------------------

  /// Install `recorder` as the process-wide active recorder (nullptr
  /// disables conformance tracking). The recorder must outlive all
  /// admit/release/record callers, i.e. stay alive until after
  /// install(nullptr).
  static void install(ArrivalRecorder* recorder);

  /// The active recorder, or nullptr when conformance is off. This load
  /// is the entire disabled-path cost on admit/release.
  static ArrivalRecorder* active() noexcept {
    return g_active_.load(std::memory_order_acquire);
  }

  // -- admission-path hooks (lock-free, never block) ---------------------

  /// Claim a slot for a newly admitted flow. Safe to call concurrently
  /// with record()/collect(); re-admitting an id already registered is a
  /// no-op.
  void on_admit(traffic::FlowId flow_id, std::uint32_t class_index) noexcept;

  /// Release the flow's slot (no-op for unknown ids, e.g. flows admitted
  /// before the recorder was installed).
  void on_release(traffic::FlowId flow_id) noexcept;

  /// Credit `bits` of arrivals to `flow_id` at time `t_ns`. Unknown ids
  /// count as dropped records. Bits are rounded down to 2^-10 granules.
  void record(traffic::FlowId flow_id, double bits,
              std::int64_t t_ns) noexcept;

  // -- inspection (monitor side; concurrent with writers) ----------------

  /// One registered flow's live windows, evaluated at collect() time.
  struct FlowWindows {
    traffic::FlowId flow_id = 0;
    std::uint32_t class_index = 0;
    std::int64_t registered_ns = 0;
    double total_bits = 0.0;  ///< lifetime arrivals since registration
    /// Ê over the trailing kWindowNs[s] window, in bits.
    double window_bits[kScales] = {0.0, 0.0, 0.0, 0.0};
  };

  /// Append one FlowWindows per live flow, windows evaluated at `now_ns`
  /// (same clock domain as record()). Best effort under churn: a flow
  /// admitted or released mid-scan may be missed or carry partial data.
  void collect(std::int64_t now_ns, std::vector<FlowWindows>& out) const;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Live registered flows (approximate under churn).
  std::size_t flow_count() const noexcept {
    return live_.load(std::memory_order_acquire);
  }
  /// Registrations refused because the probe window was full.
  std::uint64_t dropped_registrations() const noexcept {
    return dropped_registrations_.load(std::memory_order_relaxed);
  }
  /// record() calls for ids with no live slot.
  std::uint64_t dropped_records() const noexcept {
    return dropped_records_.load(std::memory_order_relaxed);
  }

 private:
  /// One sub-bucket: absolute bucket number + arrival units in it.
  /// A writer observing a stale epoch CASes it forward and zeroes the
  /// units; a concurrent add between the CAS and the zeroing is lost
  /// (undercount — conservative).
  struct Bucket {
    std::atomic<std::int64_t> epoch{-1};
    std::atomic<std::uint64_t> units{0};
  };

  struct Slot {
    /// Flow id + 1 ("key"); 0 = free. Offset by one so flow id 0 is
    /// representable.
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint32_t> class_index{0};
    std::atomic<std::int64_t> registered_ns{0};
    std::atomic<std::uint64_t> total_units{0};
    Bucket buckets[kScales][kBucketsPerScale];
  };

  Slot* find(traffic::FlowId flow_id) const noexcept;

  static std::atomic<ArrivalRecorder*> g_active_;

  std::size_t capacity_;  ///< power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::size_t> live_{0};
  std::atomic<std::uint64_t> dropped_registrations_{0};
  std::atomic<std::uint64_t> dropped_records_{0};
};

}  // namespace ubac::telemetry
