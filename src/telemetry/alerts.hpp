#pragma once

/// \file alerts.hpp
/// \brief Declarative alert rules evaluated on the sampler tick.
///
/// An AlertRule is a predicate over the current MetricsSnapshot and the
/// rollup store: it returns the observed value when the condition is
/// breached, nothing otherwise. The engine adds firing/resolved
/// hysteresis on top:
///
///   inactive -> pending   first breached tick
///   pending  -> firing    `for_ticks` consecutive breached ticks
///   pending  -> inactive  any quiet tick (the streak restarts)
///   firing   -> inactive  `resolve_ticks` consecutive quiet ticks
///
/// so one noisy window neither fires nor resolves an alert. Transitions
/// are mirrored as kAlert events into the EventTracer (visible in Chrome
/// traces next to the admit/reject stream), counted in the metrics
/// registry (`ubac_alerts_fired_total`, `ubac_alerts_active`), and the
/// first fire freezes the same FlightSnapshot the DeadlineWatchdog grabs
/// on a deadline miss.
///
/// Ships three built-ins:
///  * headroom_rule        — some ubac_admission_class_utilization gauge
///                           holds above a threshold (default 0.9) of the
///                           verified class share: the reservation pool is
///                           nearly exhausted and rejects are imminent.
///  * rejection_spike_rule — the utilization-exceeded decision rate from
///                           the rollups exceeds a per-second threshold.
///  * deadline_miss_rule   — the DeadlineWatchdog miss counter moved: a
///                           configured guarantee was broken (should never
///                           breach at a verified alpha).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/event_trace.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"

namespace ubac::telemetry {

class ConformanceMonitor;

enum class AlertState { kInactive, kPending, kFiring };

const char* to_string(AlertState state);

/// One actionable observation attached to a breach: which (server, class)
/// budget is starved (holding above the rule threshold) or idle (nearly
/// unused while others starve), or — for the conformance plane — which
/// flow is misdeclaring its envelope. Plain indices — the telemetry layer
/// knows nothing about graphs or controllers; consumers (the
/// reconfiguration actuator) map them back onto the ledger they
/// instrumented.
struct AlertAction {
  enum class Kind : std::uint8_t { kStarved, kIdle, kMisdeclaring };
  Kind kind = Kind::kStarved;
  std::uint32_t server = 0;
  std::uint32_t class_index = 0;
  /// The offending flow for kMisdeclaring actions (0 otherwise).
  std::uint64_t flow_id = 0;
  double value = 0.0;  ///< utilization fraction / conformance margin
};

const char* to_string(AlertAction::Kind kind);

/// What a rule check reports on a breached tick: the headline value the
/// hysteresis tracks plus the per-budget actions that explain it.
struct AlertObservation {
  double value = 0.0;
  std::vector<AlertAction> actions;
};

struct AlertRule {
  std::string name;  ///< stable identifier (label value, event reason)
  std::string description;
  /// Returns the observation when the condition is breached, std::nullopt
  /// when quiet. The third argument is the rule's *current* threshold —
  /// runtime-tunable via AlertEngine::configure_rule, so checks must read
  /// it from the argument rather than capturing a copy.
  std::function<std::optional<AlertObservation>(
      const MetricsSnapshot&, const TimeSeriesStore&, double)>
      check;
  double threshold = 0.0;         ///< passed to check; live-tunable
  std::size_t for_ticks = 3;      ///< consecutive breaches before firing
  std::size_t resolve_ticks = 3;  ///< consecutive quiet ticks to resolve
};

/// Runtime adjustment for one rule; unset fields keep their value.
struct AlertRuleConfig {
  std::optional<double> threshold;
  std::optional<std::size_t> for_ticks;
  std::optional<std::size_t> resolve_ticks;
};

struct AlertStatus {
  std::string rule;
  std::string description;
  AlertState state = AlertState::kInactive;
  double value = 0.0;           ///< last breached value (0 while inactive)
  double threshold = 0.0;       ///< current (possibly reconfigured) threshold
  std::size_t streak = 0;       ///< current breach (pending) / quiet (firing) run
  std::uint64_t fired = 0;      ///< lifetime fire transitions
  std::int64_t since_ns = 0;    ///< entry time of the current state
  /// Actions from the newest breached tick (empty while quiet).
  std::vector<AlertAction> actions;
};

class AlertEngine {
 public:
  struct Options {
    /// Fire/resolve events are mirrored here (optional, not owned).
    EventTracer* tracer = nullptr;
    /// Self-instrumentation (`ubac_alerts_*`) plus the gauge families of
    /// the fire-time flight snapshot (optional, not owned).
    MetricsRegistry* metrics = nullptr;
    /// Tracer tail kept in the fire-time flight snapshot.
    std::size_t snapshot_max_events = 64;
  };

  AlertEngine() = default;
  explicit AlertEngine(Options options);

  void add_rule(AlertRule rule);
  std::size_t rule_count() const;

  /// Adjust a rule's threshold / hysteresis at runtime (the /alerts/config
  /// POST route and serve CLI flags land here). Returns false when no rule
  /// has that name. Zero tick counts are clamped to 1, matching add_rule.
  bool configure_rule(const std::string& name, const AlertRuleConfig& config);

  /// JSON for GET /alerts/config: per rule, the live threshold and
  /// hysteresis tick counts.
  std::string config_to_json() const;

  /// One hysteresis step over every rule; called by TelemetrySampler per
  /// tick. Thread-safe against status()/to_json() readers.
  void evaluate(const MetricsSnapshot& snapshot, const TimeSeriesStore& store,
                std::int64_t t_ns);

  std::vector<AlertStatus> status() const;
  /// Any rule currently in kFiring.
  bool any_firing() const;
  /// Ticks evaluated, total.
  std::uint64_t evaluations() const;

  /// Flight snapshot frozen at the most recent inactive/pending -> firing
  /// transition (empty before the first fire).
  FlightSnapshot last_fire_snapshot() const;
  bool has_fire_snapshot() const;

  /// JSON for the /alerts endpoint: evaluation count plus one object per
  /// rule (state, value, streak, fired count, since timestamp).
  std::string to_json() const;

  // -- built-in rules ------------------------------------------------------

  /// Fires when any ubac_admission_class_utilization sample of
  /// `controller` holds above `threshold` (fraction of the verified class
  /// share alpha*C) for `k` ticks. The observation carries one kStarved
  /// action per breaching (server, class) budget and one kIdle action per
  /// budget sitting below `idle_fraction` of its share while others starve.
  static AlertRule headroom_rule(const std::string& controller,
                                 double threshold = 0.9, std::size_t k = 3,
                                 double idle_fraction = 0.05);

  /// Fires when the utilization-exceeded decision rate (from the rollup
  /// store, per second) of `controller` exceeds `per_second` for `k`
  /// ticks.
  static AlertRule rejection_spike_rule(const std::string& controller,
                                        double per_second = 100.0,
                                        std::size_t k = 3);

  /// Fires when ubac_watchdog_deadline_misses_total moves (any positive
  /// miss rate): a configured delay guarantee was broken.
  static AlertRule deadline_miss_rule(std::size_t k = 1);

  /// Fires when `monitor` scores any flow's conformance margin below
  /// `margin_threshold` (the rule's live-tunable threshold): some flow is
  /// offering more than its declared (T, ρ). The observation carries one
  /// kMisdeclaring action per offender (worst margin first, at most
  /// `top_k`) with the flow id in the payload. Defined in conformance.cpp;
  /// `monitor` must outlive the engine.
  static AlertRule misdeclaration_rule(const ConformanceMonitor* monitor,
                                       double margin_threshold = 0.0,
                                       std::size_t k = 3,
                                       std::size_t top_k = 8);

 private:
  struct RuleState {
    AlertRule rule;
    /// Stable strings the mirrored TraceEvents' `reason` points at (the
    /// tracer never owns reasons; these live as long as the engine).
    std::unique_ptr<std::string> fire_reason;
    std::unique_ptr<std::string> resolve_reason;
    AlertState state = AlertState::kInactive;
    double value = 0.0;
    std::size_t streak = 0;
    std::uint64_t fired = 0;
    std::int64_t since_ns = 0;
    std::vector<AlertAction> actions;  ///< newest breached tick's actions
    Counter* fired_total = nullptr;  ///< when metrics are wired
    Gauge* active = nullptr;
  };

  void mirror(const RuleState& rs, bool fire, double value,
              std::int64_t t_ns);

  Options options_;
  mutable std::mutex mutex_;
  std::vector<RuleState> rules_;
  std::uint64_t evaluations_ = 0;
  bool has_fire_snapshot_ = false;
  FlightSnapshot fire_snapshot_;
};

}  // namespace ubac::telemetry
