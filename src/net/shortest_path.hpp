#pragma once

/// \file shortest_path.hpp
/// \brief Hop-count shortest paths, distance matrices and graph metrics.
///
/// All tie-breaking is deterministic (prefer lower NodeId), so the
/// shortest-path baseline in the experiments is reproducible.

#include <optional>
#include <vector>

#include "net/graph.hpp"
#include "net/path.hpp"

namespace ubac::net {

/// Hop distances from `src` to every node; kUnreachable when disconnected.
inline constexpr int kUnreachable = -1;
std::vector<int> bfs_hops(const Topology& topo, NodeId src);

/// One shortest path (by hop count) src->dst, lowest-NodeId tie-breaking.
/// Empty when unreachable. A path from a node to itself is {src}.
std::optional<NodePath> shortest_path(const Topology& topo, NodeId src,
                                      NodeId dst);

/// All-pairs hop distances, indexed [src][dst].
std::vector<std::vector<int>> all_pairs_hops(const Topology& topo);

/// True when every node can reach every other node over directed links.
bool is_strongly_connected(const Topology& topo);

/// Diameter: maximum over all reachable pairs of the shortest hop
/// distance. Throws std::runtime_error when the graph is disconnected.
int diameter(const Topology& topo);

/// Dijkstra over per-directed-link weights (indexed by LinkId; all
/// weights must be positive). Deterministic tie-breaking (lower total
/// weight, then lower predecessor NodeId). Empty when unreachable.
std::optional<NodePath> dijkstra_path(const Topology& topo, NodeId src,
                                      NodeId dst,
                                      const std::vector<double>& link_weight);

}  // namespace ubac::net
