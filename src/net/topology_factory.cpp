#include "net/topology_factory.hpp"

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ubac::net {

Topology mci_backbone(BitsPerSecond capacity) {
  Topology topo("mci-backbone");
  const char* cities[] = {
      "Seattle",      "Sacramento", "SanFrancisco", "LosAngeles",
      "SaltLakeCity", "Phoenix",    "Denver",       "Dallas",
      "Houston",      "NewOrleans", "KansasCity",   "Chicago",
      "StLouis",      "Atlanta",    "Miami",        "WashingtonDC",
      "NewYork",      "Boston",     "Cleveland"};
  for (const char* city : cities) topo.add_node(city);

  // 39 duplex links; verified by tests/net_test.cpp to give diameter 4 and
  // max degree 6 (the invariants the paper states for Fig. 4).
  const std::pair<int, int> edges[] = {
      {0, 2},   {0, 4},   {0, 11},            // Seattle
      {1, 2},   {1, 3},   {1, 4},   {1, 6},   // Sacramento
      {2, 3},                                 // SanFrancisco
      {3, 5},   {3, 6},   {3, 7},   {3, 13},  // LosAngeles
      {4, 6},   {4, 10},                      // SaltLakeCity
      {5, 7},                                 // Phoenix
      {6, 10},  {6, 11},                      // Denver
      {7, 8},   {7, 10},  {7, 12},  {7, 13},  // Dallas
      {8, 9},                                 // Houston
      {9, 14},                                // NewOrleans
      {10, 11}, {10, 12},                     // KansasCity
      {11, 13}, {11, 16}, {11, 18},           // Chicago
      {12, 13}, {12, 15}, {12, 18},           // StLouis
      {13, 14}, {13, 15},                     // Atlanta
      {14, 15},                               // Miami
      {15, 16}, {15, 18},                     // WashingtonDC
      {16, 17}, {16, 18},                     // NewYork
      {17, 18},                               // Boston-Cleveland
  };
  for (const auto& [a, b] : edges)
    topo.add_duplex_link(static_cast<NodeId>(a), static_cast<NodeId>(b),
                         capacity);
  return topo;
}

Topology ring(std::size_t n, BitsPerSecond capacity) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  Topology topo("ring-" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) topo.add_node("r" + std::to_string(i));
  for (std::size_t i = 0; i < n; ++i)
    topo.add_duplex_link(static_cast<NodeId>(i),
                         static_cast<NodeId>((i + 1) % n), capacity);
  return topo;
}

Topology line(std::size_t n, BitsPerSecond capacity) {
  if (n < 2) throw std::invalid_argument("line: need n >= 2");
  Topology topo("line-" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) topo.add_node("r" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i)
    topo.add_duplex_link(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                         capacity);
  return topo;
}

Topology star(std::size_t leaves, BitsPerSecond capacity) {
  if (leaves < 2) throw std::invalid_argument("star: need leaves >= 2");
  Topology topo("star-" + std::to_string(leaves));
  const NodeId hub = topo.add_node("hub");
  for (std::size_t i = 0; i < leaves; ++i) {
    const NodeId leaf = topo.add_node("leaf" + std::to_string(i));
    topo.add_duplex_link(hub, leaf, capacity);
  }
  return topo;
}

Topology full_mesh(std::size_t n, BitsPerSecond capacity) {
  if (n < 2) throw std::invalid_argument("full_mesh: need n >= 2");
  Topology topo("mesh-" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) topo.add_node("r" + std::to_string(i));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      topo.add_duplex_link(static_cast<NodeId>(i), static_cast<NodeId>(j),
                           capacity);
  return topo;
}

Topology grid(std::size_t rows, std::size_t cols, BitsPerSecond capacity) {
  if (rows < 2 || cols < 2)
    throw std::invalid_argument("grid: need rows, cols >= 2");
  Topology topo("grid-" + std::to_string(rows) + "x" + std::to_string(cols));
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      topo.add_node("r" + std::to_string(r) + "_" + std::to_string(c));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) topo.add_duplex_link(id(r, c), id(r, c + 1), capacity);
      if (r + 1 < rows) topo.add_duplex_link(id(r, c), id(r + 1, c), capacity);
    }
  return topo;
}

Topology balanced_tree(std::size_t arity, std::size_t depth,
                       BitsPerSecond capacity) {
  if (arity < 2) throw std::invalid_argument("balanced_tree: arity >= 2");
  if (depth < 1) throw std::invalid_argument("balanced_tree: depth >= 1");
  Topology topo("tree-" + std::to_string(arity) + "x" + std::to_string(depth));
  std::vector<NodeId> frontier{topo.add_node("n0")};
  std::size_t next_label = 1;
  for (std::size_t level = 0; level < depth; ++level) {
    std::vector<NodeId> next;
    for (NodeId parent : frontier) {
      for (std::size_t c = 0; c < arity; ++c) {
        const NodeId child = topo.add_node("n" + std::to_string(next_label++));
        topo.add_duplex_link(parent, child, capacity);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return topo;
}

Topology random_connected(std::size_t n, double avg_degree,
                          std::uint64_t seed, BitsPerSecond capacity) {
  if (n < 2) throw std::invalid_argument("random_connected: need n >= 2");
  if (avg_degree < 2.0 || avg_degree > static_cast<double>(n - 1))
    throw std::invalid_argument("random_connected: bad avg_degree");
  Topology topo("random-" + std::to_string(n) + "-seed" +
                std::to_string(seed));
  for (std::size_t i = 0; i < n; ++i) topo.add_node("r" + std::to_string(i));

  util::Xoshiro256 rng(seed);
  std::set<std::pair<NodeId, NodeId>> used;
  auto add = [&](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    if (a == b || used.count({a, b})) return false;
    used.insert({a, b});
    topo.add_duplex_link(a, b, capacity);
    return true;
  };

  // Random spanning tree: attach each node to a random earlier node.
  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId prev = order[rng.uniform_index(i)];
    add(order[i], prev);
  }

  // Densify up to the requested average degree.
  const auto target_links =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n) / 2.0);
  std::size_t guard = 0;
  while (used.size() < target_links && guard < 100 * target_links) {
    ++guard;
    const auto a = static_cast<NodeId>(rng.uniform_index(n));
    const auto b = static_cast<NodeId>(rng.uniform_index(n));
    add(a, b);
  }
  return topo;
}

}  // namespace ubac::net
