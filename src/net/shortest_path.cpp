#include "net/shortest_path.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace ubac::net {

std::vector<int> bfs_hops(const Topology& topo, NodeId src) {
  topo.check_node(src);
  std::vector<int> dist(topo.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : topo.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::optional<NodePath> shortest_path(const Topology& topo, NodeId src,
                                      NodeId dst) {
  topo.check_node(src);
  topo.check_node(dst);
  if (src == dst) return NodePath{src};
  // BFS with parent tracking; neighbors() returns ascending ids, so the
  // first parent recorded is the lowest-id one on a shortest path.
  std::vector<int> dist(topo.node_count(), kUnreachable);
  std::vector<NodeId> parent(topo.node_count(), 0);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : topo.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        parent[v] = u;
        if (v == dst) {
          NodePath path{dst};
          NodeId cur = dst;
          while (cur != src) {
            cur = parent[cur];
            path.push_back(cur);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        frontier.push(v);
      }
    }
  }
  return std::nullopt;
}

std::vector<std::vector<int>> all_pairs_hops(const Topology& topo) {
  std::vector<std::vector<int>> dist;
  dist.reserve(topo.node_count());
  for (NodeId src = 0; src < topo.node_count(); ++src)
    dist.push_back(bfs_hops(topo, src));
  return dist;
}

bool is_strongly_connected(const Topology& topo) {
  if (topo.node_count() == 0) return true;
  for (NodeId src = 0; src < topo.node_count(); ++src) {
    const auto dist = bfs_hops(topo, src);
    for (int d : dist)
      if (d == kUnreachable) return false;
  }
  return true;
}

std::optional<NodePath> dijkstra_path(
    const Topology& topo, NodeId src, NodeId dst,
    const std::vector<double>& link_weight) {
  topo.check_node(src);
  topo.check_node(dst);
  if (link_weight.size() != topo.link_count())
    throw std::invalid_argument("dijkstra_path: weight vector size mismatch");
  for (double w : link_weight)
    if (!(w > 0.0))
      throw std::invalid_argument("dijkstra_path: weights must be positive");
  if (src == dst) return NodePath{src};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(topo.node_count(), kInf);
  std::vector<NodeId> parent(topo.node_count(), 0);
  std::vector<char> done(topo.node_count(), 0);
  using Entry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = 1;
    if (u == dst) break;
    for (LinkId id : topo.out_links(u)) {
      const DirectedLink& link = topo.link(id);
      const double nd = d + link_weight[id];
      // Strict improvement, or equal cost with a lower-id predecessor,
      // keeps the choice deterministic.
      if (nd < dist[link.to] ||
          (nd == dist[link.to] && !done[link.to] && u < parent[link.to])) {
        dist[link.to] = nd;
        parent[link.to] = u;
        heap.emplace(nd, link.to);
      }
    }
  }
  if (dist[dst] == kInf) return std::nullopt;
  NodePath path{dst};
  NodeId cur = dst;
  while (cur != src) {
    cur = parent[cur];
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int diameter(const Topology& topo) {
  if (topo.node_count() == 0) return 0;
  int best = 0;
  for (NodeId src = 0; src < topo.node_count(); ++src) {
    const auto dist = bfs_hops(topo, src);
    for (int d : dist) {
      if (d == kUnreachable)
        throw std::runtime_error("diameter: topology is disconnected");
      best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace ubac::net
