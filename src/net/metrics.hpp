#pragma once

/// \file metrics.hpp
/// \brief Structural topology metrics used by the experiment analyses.
///
/// The Table 1 numbers are shaped by where routes concentrate; these
/// metrics (degree profile, average path length, per-link shortest-path
/// betweenness) let the benches explain *which* links limit the maximum
/// utilization and how topology structure drives the SP/heuristic gap.

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "net/path.hpp"

namespace ubac::net {

struct DegreeProfile {
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  /// histogram[d] = number of routers with out-degree d.
  std::vector<std::size_t> histogram;
};

DegreeProfile degree_profile(const Topology& topo);

/// Mean hop distance over all ordered reachable pairs. Throws when the
/// topology is disconnected.
double average_path_length(const Topology& topo);

/// Shortest-path betweenness per directed link: the number of ordered
/// (src, dst) pairs whose deterministic BFS shortest path (the same one
/// shortest_path() returns) crosses the link. Indexed by LinkId.
std::vector<std::size_t> link_betweenness(const Topology& topo);

/// Number of routes in `routes` crossing each directed link (LinkId ==
/// ServerId indexing). Useful for bottleneck tables of a configuration.
std::vector<std::size_t> link_route_load(const Topology& topo,
                                         const std::vector<NodePath>& routes);

}  // namespace ubac::net
