#include "net/ksp.hpp"

#include "net/shortest_path.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace ubac::net {

namespace {

/// BFS shortest path that ignores banned nodes and banned directed links.
/// Deterministic lowest-NodeId tie-breaking, like shortest_path().
std::optional<NodePath> restricted_shortest_path(
    const Topology& topo, NodeId src, NodeId dst,
    const std::vector<char>& banned_node,
    const std::set<std::pair<NodeId, NodeId>>& banned_link) {
  if (banned_node[src] || banned_node[dst]) return std::nullopt;
  if (src == dst) return NodePath{src};
  std::vector<int> dist(topo.node_count(), -1);
  std::vector<NodeId> parent(topo.node_count(), 0);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : topo.neighbors(u)) {
      if (banned_node[v] || dist[v] != -1) continue;
      if (banned_link.count({u, v})) continue;
      dist[v] = dist[u] + 1;
      parent[v] = u;
      if (v == dst) {
        NodePath path{dst};
        NodeId cur = dst;
        while (cur != src) {
          cur = parent[cur];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(v);
    }
  }
  return std::nullopt;
}

struct PathOrder {
  bool operator()(const NodePath& a, const NodePath& b) const {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  }
};

}  // namespace

std::vector<NodePath> k_shortest_paths(const Topology& topo, NodeId src,
                                       NodeId dst, std::size_t k) {
  topo.check_node(src);
  topo.check_node(dst);
  if (src == dst) throw std::invalid_argument("k_shortest_paths: src == dst");
  if (k == 0) throw std::invalid_argument("k_shortest_paths: k must be >= 1");

  std::vector<NodePath> result;
  const auto first = shortest_path(topo, src, dst);
  if (!first) return result;
  result.push_back(*first);

  // Candidate pool, ordered; std::set gives dedup + deterministic min.
  std::set<NodePath, PathOrder> candidates;

  while (result.size() < k) {
    const NodePath& prev = result.back();
    // For each spur node in the last found path...
    for (std::size_t i = 0; i + 1 < prev.size(); ++i) {
      const NodeId spur = prev[i];
      const NodePath root(prev.begin(), prev.begin() + static_cast<long>(i) + 1);

      std::set<std::pair<NodeId, NodeId>> banned_link;
      for (const NodePath& p : result) {
        if (p.size() > i &&
            std::equal(root.begin(), root.end(), p.begin())) {
          if (p.size() > i + 1) banned_link.insert({p[i], p[i + 1]});
        }
      }
      for (const NodePath& p : candidates) {
        if (p.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.begin())) {
          banned_link.insert({p[i], p[i + 1]});
        }
      }

      std::vector<char> banned_node(topo.node_count(), 0);
      for (std::size_t j = 0; j < i; ++j) banned_node[prev[j]] = 1;

      const auto spur_path = restricted_shortest_path(topo, spur, dst,
                                                      banned_node, banned_link);
      if (!spur_path) continue;
      NodePath total = root;
      total.insert(total.end(), spur_path->begin() + 1, spur_path->end());
      // Skip if already selected.
      if (std::find(result.begin(), result.end(), total) == result.end())
        candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace ubac::net
