#pragma once

/// \file server_graph.hpp
/// \brief The link-server model of Section 3.
///
/// For delay computation the paper models a router as a set of output
/// *link servers*: every directed link of the topology becomes one server
/// where packets may queue. A router-level route maps to the sequence of
/// link servers it traverses.
///
/// Each server carries a fan-in N — the number of input links over which
/// competing traffic may arrive at the router that owns the server. The
/// paper assumes a uniform N per network (N = 6 for the MCI backbone);
/// `FanInMode::kPerRouter` is a tighter refinement using the owning
/// router's actual in-degree plus one aggregate host ingress link.

#include <cstdint>
#include <optional>
#include <vector>

#include "net/graph.hpp"
#include "net/path.hpp"

namespace ubac::net {

/// How server fan-in (the paper's N) is derived.
enum class FanInMode {
  kUniform,    ///< every server uses the same N (paper mode)
  kPerRouter,  ///< N = in_degree(owning router) + 1 host ingress
};

/// One queueing point: the output buffer in front of a directed link.
struct LinkServer {
  LinkId link;              ///< underlying directed link
  NodeId from;              ///< router owning this output link
  NodeId to;                ///< downstream router
  BitsPerSecond capacity;   ///< service rate C of the server
  std::uint32_t fan_in;     ///< the paper's N for this server
};

/// Immutable view of a Topology as a graph of link servers. ServerIds are
/// identical to LinkIds (dense, deterministic), which makes mapping cheap.
class ServerGraph {
 public:
  /// Paper mode: uniform fan-in. When `uniform_n` is empty the topology's
  /// maximum in-degree is used (what the paper quotes as N for MCI).
  explicit ServerGraph(const Topology& topo,
                       std::optional<std::uint32_t> uniform_n = std::nullopt);

  /// Refined mode: per-router fan-in.
  ServerGraph(const Topology& topo, FanInMode mode);

  std::size_t size() const { return servers_.size(); }
  const LinkServer& server(ServerId id) const { return servers_.at(id); }
  const Topology& topology() const { return *topo_; }

  /// Server sitting on a given directed link.
  ServerId server_for_link(LinkId link) const { return link; }

  /// Map a router-level path to the ordered list of servers traversed.
  /// Throws std::invalid_argument if a hop has no link.
  ServerPath map_path(const NodePath& path) const;

 private:
  void build(FanInMode mode, std::optional<std::uint32_t> uniform_n);

  const Topology* topo_;
  std::vector<LinkServer> servers_;
};

}  // namespace ubac::net
