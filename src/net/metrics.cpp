#include "net/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/shortest_path.hpp"

namespace ubac::net {

DegreeProfile degree_profile(const Topology& topo) {
  DegreeProfile profile;
  if (topo.node_count() == 0) return profile;
  profile.min_degree = topo.out_degree(0);
  double total = 0.0;
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    const std::size_t d = topo.out_degree(n);
    profile.min_degree = std::min(profile.min_degree, d);
    profile.max_degree = std::max(profile.max_degree, d);
    total += static_cast<double>(d);
    if (d >= profile.histogram.size()) profile.histogram.resize(d + 1, 0);
    ++profile.histogram[d];
  }
  profile.mean_degree = total / static_cast<double>(topo.node_count());
  return profile;
}

double average_path_length(const Topology& topo) {
  if (topo.node_count() < 2)
    throw std::invalid_argument("average_path_length: need >= 2 nodes");
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId s = 0; s < topo.node_count(); ++s) {
    const auto dist = bfs_hops(topo, s);
    for (NodeId d = 0; d < topo.node_count(); ++d) {
      if (s == d) continue;
      if (dist[d] == kUnreachable)
        throw std::runtime_error("average_path_length: disconnected");
      total += dist[d];
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

std::vector<std::size_t> link_betweenness(const Topology& topo) {
  std::vector<NodePath> routes;
  routes.reserve(topo.node_count() * topo.node_count());
  for (NodeId s = 0; s < topo.node_count(); ++s)
    for (NodeId d = 0; d < topo.node_count(); ++d) {
      if (s == d) continue;
      const auto path = shortest_path(topo, s, d);
      if (path) routes.push_back(*path);
    }
  return link_route_load(topo, routes);
}

std::vector<std::size_t> link_route_load(const Topology& topo,
                                         const std::vector<NodePath>& routes) {
  std::vector<std::size_t> load(topo.link_count(), 0);
  for (const auto& route : routes) {
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      const auto link = topo.find_link(route[i], route[i + 1]);
      if (!link)
        throw std::invalid_argument("link_route_load: route uses a missing "
                                    "link");
      ++load[*link];
    }
  }
  return load;
}

}  // namespace ubac::net
