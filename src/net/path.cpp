#include "net/path.hpp"

#include <unordered_set>

namespace ubac::net {

bool is_simple(const NodePath& path) {
  std::unordered_set<NodeId> seen;
  for (NodeId n : path)
    if (!seen.insert(n).second) return false;
  return true;
}

bool is_valid_path(const Topology& topo, const NodePath& path) {
  for (NodeId n : path)
    if (n >= topo.node_count()) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (!topo.find_link(path[i], path[i + 1])) return false;
  return true;
}

}  // namespace ubac::net
