#pragma once

/// \file ksp.hpp
/// \brief Yen's k-shortest loopless paths (hop-count metric).
///
/// The route-selection heuristic of Section 5.2 needs "a group of
/// candidate routes" per source/destination pair; we generate them as the
/// k shortest simple paths, ordered by (hop count, lexicographic node
/// sequence) so runs are reproducible.

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "net/path.hpp"

namespace ubac::net {

/// Up to `k` shortest simple paths src->dst by hop count, deterministic
/// order. Fewer are returned when the graph has fewer simple paths.
/// Requires src != dst and k >= 1.
std::vector<NodePath> k_shortest_paths(const Topology& topo, NodeId src,
                                       NodeId dst, std::size_t k);

}  // namespace ubac::net
