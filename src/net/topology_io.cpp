#include "net/topology_io.hpp"

#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ubac::net {

std::string to_text(const Topology& topo) {
  std::ostringstream out;
  out << "topology " << topo.name() << "\n";
  for (NodeId n = 0; n < topo.node_count(); ++n)
    out << "node " << topo.node_name(n) << "\n";
  std::set<LinkId> emitted;
  char buf[64];
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    if (emitted.count(id)) continue;
    const DirectedLink& l = topo.link(id);
    const auto reverse = topo.find_link(l.to, l.from);
    std::snprintf(buf, sizeof(buf), "%.17g", l.capacity);
    if (reverse && topo.link(*reverse).capacity == l.capacity) {
      out << "link " << topo.node_name(l.from) << " " << topo.node_name(l.to)
          << " " << buf << "\n";
      emitted.insert(*reverse);
    } else {
      out << "simplex " << topo.node_name(l.from) << " "
          << topo.node_name(l.to) << " " << buf << "\n";
    }
    emitted.insert(id);
  }
  return out.str();
}

Topology from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  Topology topo;
  bool named = false;

  auto fail = [&](const std::string& msg) {
    throw std::runtime_error("topology parse error at line " +
                             std::to_string(line_no) + ": " + msg);
  };
  auto node_or_fail = [&](const std::string& name) {
    const auto id = topo.find_node(name);
    if (!id) fail("unknown node '" + name + "'");
    return *id;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    if (kind == "topology") {
      std::string name;
      if (!(ls >> name)) fail("topology needs a name");
      if (named) fail("duplicate topology line");
      topo = Topology(name);
      named = true;
    } else if (kind == "node") {
      std::string name;
      if (!(ls >> name)) fail("node needs a name");
      topo.add_node(name);
    } else if (kind == "link" || kind == "simplex") {
      std::string a, b;
      double cap = 0.0;
      if (!(ls >> a >> b >> cap)) fail(kind + " needs: <a> <b> <capacity>");
      if (cap <= 0.0) fail("capacity must be positive");
      const NodeId na = node_or_fail(a);
      const NodeId nb = node_or_fail(b);
      if (kind == "link")
        topo.add_duplex_link(na, nb, cap);
      else
        topo.add_simplex_link(na, nb, cap);
    } else {
      fail("unknown directive '" + kind + "'");
    }
  }
  return topo;
}

}  // namespace ubac::net
