#pragma once

/// \file topology_factory.hpp
/// \brief Canned topologies, including the paper's MCI backbone (Fig. 4).

#include <cstdint>

#include "net/graph.hpp"
#include "util/units.hpp"

namespace ubac::net {

/// Default link capacity used by the factory (the paper's 100 Mb/s).
inline constexpr BitsPerSecond kDefaultCapacity = 100e6;

/// The MCI ISP backbone used in Section 6 (Fig. 4): 19 routers, 39 duplex
/// links, diameter 4, maximum router degree 6, all links 100 Mb/s. The
/// paper reproduces the map as a raster image; this encoding preserves the
/// stated invariants (L = 4, N = 6) which are what the analysis depends on.
Topology mci_backbone(BitsPerSecond capacity = kDefaultCapacity);

/// Ring of n >= 3 routers.
Topology ring(std::size_t n, BitsPerSecond capacity = kDefaultCapacity);

/// Line (chain) of n >= 2 routers; worst-case diameter for its size.
Topology line(std::size_t n, BitsPerSecond capacity = kDefaultCapacity);

/// Star: one hub plus `leaves` >= 2 spokes.
Topology star(std::size_t leaves, BitsPerSecond capacity = kDefaultCapacity);

/// Complete graph on n >= 2 routers (diameter 1).
Topology full_mesh(std::size_t n, BitsPerSecond capacity = kDefaultCapacity);

/// rows x cols grid (rows, cols >= 2).
Topology grid(std::size_t rows, std::size_t cols,
              BitsPerSecond capacity = kDefaultCapacity);

/// Balanced tree with branching factor `arity` >= 2 and `depth` >= 1
/// levels below the root.
Topology balanced_tree(std::size_t arity, std::size_t depth,
                       BitsPerSecond capacity = kDefaultCapacity);

/// Random connected graph: a random spanning tree plus extra random links
/// until the average degree target is met. Deterministic for a given seed.
Topology random_connected(std::size_t n, double avg_degree,
                          std::uint64_t seed,
                          BitsPerSecond capacity = kDefaultCapacity);

}  // namespace ubac::net
