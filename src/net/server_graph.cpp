#include "net/server_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace ubac::net {

ServerGraph::ServerGraph(const Topology& topo,
                         std::optional<std::uint32_t> uniform_n)
    : topo_(&topo) {
  build(FanInMode::kUniform, uniform_n);
}

ServerGraph::ServerGraph(const Topology& topo, FanInMode mode) : topo_(&topo) {
  build(mode, std::nullopt);
}

void ServerGraph::build(FanInMode mode,
                        std::optional<std::uint32_t> uniform_n) {
  std::uint32_t n_uniform = 0;
  if (mode == FanInMode::kUniform) {
    n_uniform = uniform_n.value_or(
        static_cast<std::uint32_t>(topo_->max_in_degree()));
    if (n_uniform < 1)
      throw std::invalid_argument("ServerGraph: uniform N must be >= 1");
  }
  servers_.reserve(topo_->link_count());
  for (LinkId id = 0; id < topo_->link_count(); ++id) {
    const DirectedLink& link = topo_->link(id);
    std::uint32_t fan_in =
        mode == FanInMode::kUniform
            ? n_uniform
            : static_cast<std::uint32_t>(topo_->in_degree(link.from)) + 1;
    servers_.push_back(
        LinkServer{id, link.from, link.to, link.capacity, fan_in});
  }
}

ServerPath ServerGraph::map_path(const NodePath& path) const {
  ServerPath servers;
  if (path.size() < 2) return servers;
  servers.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = topo_->find_link(path[i], path[i + 1]);
    if (!link)
      throw std::invalid_argument("map_path: no link between consecutive "
                                  "path nodes");
    servers.push_back(server_for_link(*link));
  }
  return servers;
}

}  // namespace ubac::net
