#pragma once

/// \file graph.hpp
/// \brief Router-level network topology.
///
/// Following Section 3 of the paper, the network is a set of routers
/// connected by links. Links are directed internally (a duplex link is two
/// directed links) because queueing happens per *output* link: each
/// directed link later becomes one "link server" (see server_graph.hpp).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace ubac::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// One directed link (an output link of router `from`).
struct DirectedLink {
  NodeId from;
  NodeId to;
  BitsPerSecond capacity;
};

/// Mutable router-level topology. NodeIds and LinkIds are dense indices
/// assigned in insertion order, which keeps all algorithms deterministic.
class Topology {
 public:
  explicit Topology(std::string name = "unnamed") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Add a router; names must be unique and non-empty.
  NodeId add_node(const std::string& name);

  /// Add a pair of directed links a->b and b->a with the same capacity.
  /// Returns the two LinkIds. Throws on self-loops or duplicate links.
  std::pair<LinkId, LinkId> add_duplex_link(NodeId a, NodeId b,
                                            BitsPerSecond capacity);

  /// Add a single directed link a->b. Throws on self-loop or duplicate.
  LinkId add_simplex_link(NodeId a, NodeId b, BitsPerSecond capacity);

  std::size_t node_count() const { return node_names_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const DirectedLink& link(LinkId id) const { return links_.at(id); }
  const std::string& node_name(NodeId id) const { return node_names_.at(id); }

  /// Look up a node by name; empty when absent.
  std::optional<NodeId> find_node(const std::string& name) const;

  /// Directed link a->b, if present.
  std::optional<LinkId> find_link(NodeId a, NodeId b) const;

  /// Outgoing links of a node (LinkIds, ascending).
  const std::vector<LinkId>& out_links(NodeId node) const {
    return out_links_.at(node);
  }
  /// Incoming links of a node (LinkIds, ascending).
  const std::vector<LinkId>& in_links(NodeId node) const {
    return in_links_.at(node);
  }

  std::size_t out_degree(NodeId node) const { return out_links_.at(node).size(); }
  std::size_t in_degree(NodeId node) const { return in_links_.at(node).size(); }

  /// Neighbors reachable over one outgoing link, ascending NodeId order.
  std::vector<NodeId> neighbors(NodeId node) const;

  /// Maximum in-degree over all routers (the paper's N when links are
  /// duplex and degree-regularity is assumed).
  std::size_t max_in_degree() const;

  void check_node(NodeId id) const {
    if (id >= node_names_.size()) throw std::out_of_range("bad NodeId");
  }

 private:
  std::string name_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> name_index_;
  std::vector<DirectedLink> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
  std::unordered_map<std::uint64_t, LinkId> link_index_;  // (from<<32)|to

  static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
};

}  // namespace ubac::net
