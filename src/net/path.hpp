#pragma once

/// \file path.hpp
/// \brief Path types shared between routing and analysis.

#include <cstdint>
#include <vector>

#include "net/graph.hpp"

namespace ubac::net {

/// A route at router granularity: sequence of NodeIds, consecutive nodes
/// connected by a directed link.
using NodePath = std::vector<NodeId>;

/// Identifier of a link server (index into a ServerGraph).
using ServerId = std::uint32_t;

/// A route at link-server granularity: the servers a packet queues at, in
/// order (one per directed link of the node path).
using ServerPath = std::vector<ServerId>;

/// True when the path has no repeated node (loopless).
bool is_simple(const NodePath& path);

/// True when every consecutive node pair is connected in `topo`.
bool is_valid_path(const Topology& topo, const NodePath& path);

/// Hop count (#links) of a node path; 0 for empty/singleton paths.
inline std::size_t hop_count(const NodePath& path) {
  return path.size() < 2 ? 0 : path.size() - 1;
}

}  // namespace ubac::net
