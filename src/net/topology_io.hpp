#pragma once

/// \file topology_io.hpp
/// \brief Text serialization of topologies.
///
/// Format (line oriented, '#' comments):
///   topology <name>
///   node <name>
///   link <nodeA> <nodeB> <capacity_bps>      # duplex
///   simplex <nodeA> <nodeB> <capacity_bps>   # one direction only

#include <string>

#include "net/graph.hpp"

namespace ubac::net {

/// Serialize to the text format above. Duplex pairs added via
/// add_duplex_link round-trip as `link` lines; lone directions as `simplex`.
std::string to_text(const Topology& topo);

/// Parse the text format; throws std::runtime_error with a line number on
/// malformed input.
Topology from_text(const std::string& text);

}  // namespace ubac::net
