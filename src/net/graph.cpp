#include "net/graph.hpp"

#include <algorithm>

namespace ubac::net {

NodeId Topology::add_node(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("node name must be non-empty");
  if (name_index_.count(name))
    throw std::invalid_argument("duplicate node name: " + name);
  const auto id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  name_index_[name] = id;
  out_links_.emplace_back();
  in_links_.emplace_back();
  return id;
}

LinkId Topology::add_simplex_link(NodeId a, NodeId b, BitsPerSecond capacity) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("self-loop link");
  if (capacity <= 0.0) throw std::invalid_argument("non-positive capacity");
  if (link_index_.count(key(a, b)))
    throw std::invalid_argument("duplicate link " + node_names_[a] + "->" +
                                node_names_[b]);
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(DirectedLink{a, b, capacity});
  out_links_[a].push_back(id);
  in_links_[b].push_back(id);
  link_index_[key(a, b)] = id;
  return id;
}

std::pair<LinkId, LinkId> Topology::add_duplex_link(NodeId a, NodeId b,
                                                    BitsPerSecond capacity) {
  const LinkId ab = add_simplex_link(a, b, capacity);
  const LinkId ba = add_simplex_link(b, a, capacity);
  return {ab, ba};
}

std::optional<NodeId> Topology::find_node(const std::string& name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<LinkId> Topology::find_link(NodeId a, NodeId b) const {
  const auto it = link_index_.find(key(a, b));
  if (it == link_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> Topology::neighbors(NodeId node) const {
  std::vector<NodeId> out;
  out.reserve(out_links_.at(node).size());
  for (LinkId id : out_links_.at(node)) out.push_back(links_[id].to);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Topology::max_in_degree() const {
  std::size_t best = 0;
  for (const auto& in : in_links_) best = std::max(best, in.size());
  return best;
}

}  // namespace ubac::net
