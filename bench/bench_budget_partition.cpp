// Extension figure M: holistic fixed point vs per-hop deadline budgets.
// The classical (pre-diffserv) way to verify end-to-end deadlines is to
// split D into fixed per-hop budgets and check each server locally; the
// paper's iterative fixed point instead lets slack flow between hops.
// This bench measures the utilization each method certifies on the
// Table 1 workload — the fixed point's advantage is the concrete payoff
// of the paper's delay-computation machinery.

#include <functional>

#include "analysis/budget_partition.hpp"
#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "routing/route_selection.hpp"

using namespace ubac;

namespace {

/// Largest alpha (to 0.005) each verifier certifies on fixed SP routes.
double max_alpha(const net::ServerGraph& graph,
                 const bench::VoipScenario& scenario,
                 const std::vector<net::ServerPath>& routes,
                 const std::function<bool(double)>& safe) {
  double lo = 0.0, hi = 1.0;
  while (hi - lo > 0.005) {
    const double mid = 0.5 * (lo + hi);
    (safe(mid) ? lo : hi) = mid;
  }
  (void)graph;
  (void)scenario;
  (void)routes;
  return lo;
}

}  // namespace

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);
  std::vector<net::ServerPath> routes;
  for (const auto& d : demands)
    routes.push_back(
        graph.map_path(net::shortest_path(topo, d.src, d.dst).value()));

  bench::print_header(
      "Fig. M (extension): holistic fixed point vs per-hop budgets",
      "Max utilization certified on fixed SP routes (Table 1 scenario) by\n"
      "the paper's iterative fixed point vs classical per-hop deadline\n"
      "partitioning (equal and proportional splits).");

  const double fixed_point = max_alpha(
      graph, scenario, routes, [&](double alpha) {
        return analysis::solve_two_class(graph, alpha, scenario.bucket,
                                         scenario.deadline, routes)
            .safe();
      });
  const double equal = max_alpha(graph, scenario, routes, [&](double alpha) {
    return analysis::verify_with_budgets(graph, alpha, scenario.bucket,
                                         scenario.deadline, routes,
                                         analysis::BudgetRule::kEqual)
        .safe;
  });
  const double proportional =
      max_alpha(graph, scenario, routes, [&](double alpha) {
        return analysis::verify_with_budgets(
                   graph, alpha, scenario.bucket, scenario.deadline, routes,
                   analysis::BudgetRule::kProportional)
            .safe;
      });

  util::TextTable table({"verifier", "max certified alpha"});
  std::vector<std::vector<std::string>> rows;
  auto add = [&](const std::string& name, double value) {
    rows.push_back({name, util::TextTable::fmt(value, 3)});
    table.add_row(rows.back());
  };
  add("per-hop budgets (equal split)", equal);
  add("per-hop budgets (proportional)", proportional);
  add("holistic fixed point (paper)", fixed_point);
  bench::emit(table, {"verifier", "max_alpha"}, rows, "budget_partition");

  std::printf("\nfixed-point gain over equal-split budgets: %+.0f%%\n",
              equal > 0 ? (fixed_point / equal - 1.0) * 100.0 : 0.0);
  return 0;
}
