// Extension figure G: empirical validation of the analytic delay bounds.
// Packet-level simulation of adversarial (greedy) leaky-bucket sources:
//   (1) single contended server at several utilizations, and
//   (2) multi-hop paths on the MCI backbone at a verified configuration;
// measured worst-case delays are compared against the Theorem 3 /
// fixed-point bounds. The analysis is fluid, so measurements may exceed
// only by per-hop packetization slack (one packet transmission per hop).

#include "analysis/delay_bound.hpp"
#include "analysis/fixed_point.hpp"
#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "routing/route_selection.hpp"
#include "sim/network_sim.hpp"
#include "sim/trace.hpp"

using namespace ubac;

namespace {
constexpr Bits kPacket = 640.0;

void single_server_experiment() {
  bench::print_header(
      "Fig. G1 (extension): single-server worst case vs Theorem 3",
      "Star: 5 ingress routers -> hub -> egress; greedy voice sources fill\n"
      "the class share; measured max sojourn at the shared hub server.");

  util::TextTable table({"alpha", "flows", "measured max", "bound",
                         "bound+slack", "headroom"});
  std::vector<std::vector<std::string>> rows;
  const std::size_t fan_in = 5;
  const auto topo = net::star(fan_in + 1);
  const double n = static_cast<double>(fan_in + 1);
  const net::ServerGraph graph(topo, static_cast<std::uint32_t>(n));
  const traffic::LeakyBucket voice(640.0, units::kbps(32));

  for (const double alpha : {0.15, 0.30, 0.45, 0.60}) {
    const auto classes =
        traffic::ClassSet::two_class(voice, units::seconds(1), alpha);
    const int total = static_cast<int>(alpha * 100e6 / 32e3);
    const int per_leaf = total / static_cast<int>(fan_in);

    sim::NetworkSim netsim(graph, classes);
    const auto egress = static_cast<net::NodeId>(fan_in);
    for (std::size_t leaf = 1; leaf <= fan_in; ++leaf) {
      if (leaf == egress) continue;
      for (int f = 0; f < per_leaf; ++f) {
        sim::SourceConfig src;
        src.model = sim::SourceModel::kGreedy;
        src.packet_size = kPacket;
        src.stop = sim::to_sim_time(2.0);
        netsim.add_flow(
            graph.map_path({static_cast<net::NodeId>(leaf), 0, egress}), 0,
            src);
      }
    }
    const auto results = netsim.run(3.0);

    const Seconds d1 = analysis::theorem3_delay(alpha, n, voice, 0.0);
    const Seconds d2 = analysis::theorem3_delay(alpha, n, voice, d1);
    const Seconds bound = d1 + d2;
    const Seconds slack = 2.0 * kPacket / 100e6;
    const Seconds measured = results.class_delay[0].max();
    rows.push_back({util::TextTable::fmt(alpha, 2),
                    std::to_string((fan_in - 1) * per_leaf),
                    util::TextTable::fmt_ms(measured),
                    util::TextTable::fmt_ms(bound),
                    util::TextTable::fmt_ms(bound + slack),
                    util::TextTable::fmt_percent(
                        1.0 - measured / (bound + slack), 1)});
    table.add_row(rows.back());
  }
  bench::emit(table,
              {"alpha", "flows", "measured_ms", "bound_ms", "bound_slack_ms",
               "headroom"},
              rows, "sim_validation_single");
}

void multi_hop_experiment() {
  bench::print_header(
      "Fig. G2 (extension): multi-hop MCI paths vs fixed-point bounds",
      "Verified configuration at alpha=0.30 on diameter-length SP routes;\n"
      "greedy sources on every route; measured e2e vs per-route bound.");

  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);

  // Demands: the 20 longest SP pairs (diameter-length paths), routed SP.
  auto demands = traffic::all_ordered_pairs(topo);
  const auto hops = net::all_pairs_hops(topo);
  std::stable_sort(demands.begin(), demands.end(),
                   [&](const auto& a, const auto& b) {
                     return hops[a.src][a.dst] > hops[b.src][b.dst];
                   });
  demands.resize(20);

  const double alpha = 0.30;
  const auto selection = routing::select_routes_shortest_path(
      graph, alpha, scenario.bucket, scenario.deadline, demands);
  if (!selection.success) {
    std::fprintf(stderr, "unexpected: infeasible at alpha=0.30\n");
    return;
  }

  // 40 greedy flows per route (far below the per-link cap, but enough to
  // contend), simulated for half a second.
  const auto classes = traffic::ClassSet::two_class(
      scenario.bucket, scenario.deadline, alpha);
  sim::NetworkSim netsim(graph, classes);
  std::vector<std::uint32_t> first_flow_of_route;
  for (const auto& route : selection.server_routes) {
    first_flow_of_route.push_back(0);
    for (int f = 0; f < 40; ++f) {
      sim::SourceConfig src;
      src.model = sim::SourceModel::kGreedy;
      src.packet_size = kPacket;
      src.stop = sim::to_sim_time(0.5);
      const auto id = netsim.add_flow(route, 0, src);
      if (f == 0) first_flow_of_route.back() = id;
    }
  }
  const auto results = netsim.run(1.0);

  util::TextTable table({"route", "hops", "measured max e2e", "bound",
                         "deadline"});
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < 6; ++r) {
    const auto& d = demands[r];
    Seconds measured = 0.0;
    for (int f = 0; f < 40; ++f)
      measured = std::max(
          measured,
          results.flow_delay[first_flow_of_route[r] + f].max());
    rows.push_back(
        {topo.node_name(d.src) + "->" + topo.node_name(d.dst),
         std::to_string(selection.server_routes[r].size()),
         util::TextTable::fmt_ms(measured),
         util::TextTable::fmt_ms(selection.solution.route_delay[r]),
         util::TextTable::fmt_ms(scenario.deadline)});
    table.add_row(rows.back());
  }
  bench::emit(table, {"route", "hops", "measured_ms", "bound_ms", "deadline_ms"},
              rows, "sim_validation_multihop");

  std::printf("\nall packets delivered: %llu; worst measured e2e %.3f ms "
              "(deadline %.0f ms)\n",
              static_cast<unsigned long long>(results.packets_delivered),
              units::to_ms(results.class_delay[0].max()),
              units::to_ms(scenario.deadline));
}

void hop_decomposition_experiment() {
  bench::print_header(
      "Fig. G3 (extension): where multi-hop delay accrues (trace)",
      "Line 0-1-2-3 with cross traffic joining at router 1; per-hop mean\n"
      "and max sojourn of the through flows from the packet trace.");

  const auto topo = net::line(4);
  const net::ServerGraph graph(topo, 6u);
  const traffic::LeakyBucket voice(640.0, units::kbps(32));
  const auto classes =
      traffic::ClassSet::two_class(voice, units::seconds(1), 0.3);
  sim::NetworkSim netsim(graph, classes);
  sim::TraceRecorder trace;
  netsim.attach_trace(&trace);

  auto add_flows = [&](const net::NodePath& path, int count) {
    for (int f = 0; f < count; ++f) {
      sim::SourceConfig src;
      src.model = sim::SourceModel::kGreedy;
      src.packet_size = kPacket;
      src.stop = sim::to_sim_time(0.5);
      netsim.add_flow(graph.map_path(path), 0, src);
    }
  };
  add_flows({0, 1, 2, 3}, 200);  // the traced through traffic
  add_flows({1, 2, 3}, 300);     // cross traffic joining mid-path
  const auto results = netsim.run(1.0);
  (void)results;

  const auto by_hop = trace.sojourn_by_server(graph.size());
  util::TextTable table({"server", "packets", "mean sojourn", "max sojourn"});
  std::vector<std::vector<std::string>> rows;
  for (net::ServerId s = 0; s < graph.size(); ++s) {
    if (by_hop[s].count() == 0) continue;
    const auto& link = graph.server(s);
    rows.push_back({topo.node_name(link.from) + "->" +
                        topo.node_name(link.to),
                    std::to_string(by_hop[s].count()),
                    util::TextTable::fmt_ms(by_hop[s].mean(), 4),
                    util::TextTable::fmt_ms(by_hop[s].max())});
    table.add_row(rows.back());
  }
  bench::emit(table, {"server", "packets", "mean_ms", "max_ms"}, rows,
              "sim_validation_hops");
  std::printf("\n(queueing concentrates at r1->r2 where the cross traffic "
              "merges — the same hop the per-server bounds single out)\n");
}

}  // namespace

int main() {
  single_server_experiment();
  multi_hop_experiment();
  hop_decomposition_experiment();
  return 0;
}
