// Extension figure C: maximum safe utilization across topologies.
// Theorem 4's bounds depend only on (N, L, T, rho, D) — the topology
// enters solely through its diameter and fan-in — while the SP and
// heuristic columns respond to the actual wiring. Each topology uses its
// own (N, L) for the bounds, the paper's uniform fan-in convention, and
// the all-ordered-pairs workload.

#include <functional>

#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

int main() {
  const bench::VoipScenario scenario;
  bench::print_header(
      "Fig. C (extension): max utilization by topology",
      "Voice scenario (T=640, rho=32 kb/s, D=100 ms), all ordered pairs,\n"
      "uniform fan-in = max router in-degree per topology.");

  struct Entry {
    std::string name;
    net::Topology topo;
  };
  std::vector<Entry> entries;
  entries.push_back({"mci(19)", net::mci_backbone()});
  entries.push_back({"ring(10)", net::ring(10)});
  entries.push_back({"star(8)", net::star(8)});
  entries.push_back({"tree(2,3)", net::balanced_tree(2, 3)});
  entries.push_back({"grid(4x4)", net::grid(4, 4)});
  entries.push_back({"mesh(8)", net::full_mesh(8)});
  entries.push_back({"random(16)", net::random_connected(16, 3.5, 12345)});

  util::TextTable table({"topology", "nodes", "L", "N", "Lower Bound", "SP",
                         "Our Heuristics", "Upper Bound"});
  std::vector<std::vector<std::string>> rows;
  for (const auto& entry : entries) {
    const net::ServerGraph graph(entry.topo);  // uniform N = max in-degree
    const auto demands = traffic::all_ordered_pairs(entry.topo);
    const int l = net::diameter(entry.topo);
    const auto n = entry.topo.max_in_degree();

    routing::HeuristicOptions heuristic_opts;
    heuristic_opts.candidates_per_pair = 6;
    const auto sp = routing::maximize_utilization_shortest_path(
        graph, scenario.bucket, scenario.deadline, demands);
    const auto heuristic = routing::maximize_utilization_heuristic(
        graph, scenario.bucket, scenario.deadline, demands, heuristic_opts);

    rows.push_back({entry.name, std::to_string(entry.topo.node_count()),
                    std::to_string(l), std::to_string(n),
                    util::TextTable::fmt(sp.theorem4_lower, 3),
                    util::TextTable::fmt(sp.max_alpha, 3),
                    util::TextTable::fmt(heuristic.max_alpha, 3),
                    util::TextTable::fmt(sp.theorem4_upper, 3)});
    table.add_row(rows.back());
  }
  bench::emit(table,
              {"topology", "nodes", "diameter", "fan_in", "lower_bound", "sp",
               "heuristic", "upper_bound"},
              rows, "topology_comparison");
  return 0;
}
