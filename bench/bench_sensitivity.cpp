// Extension figure O: local sensitivity of the certified maximum
// utilization to the scenario parameters — what a provisioning engineer
// trades when renegotiating SLAs. Central finite differences of the
// heuristic alpha* with respect to deadline D, burst T and rate rho
// around the Table 1 operating point, reported as elasticities
// (% change in alpha* per % change in the parameter).

#include "bench_common.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

namespace {

double heuristic_max(const net::ServerGraph& graph,
                     const std::vector<traffic::Demand>& demands,
                     const traffic::LeakyBucket& bucket, Seconds deadline) {
  routing::HeuristicOptions opts;
  opts.candidates_per_pair = 4;
  routing::MaxUtilOptions search;
  search.resolution = 0.002;
  return routing::maximize_utilization_heuristic(graph, bucket, deadline,
                                                 demands, opts, search)
      .max_alpha;
}

}  // namespace

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);

  bench::print_header(
      "Fig. O (extension): sensitivity of alpha* at the Table 1 point",
      "Central finite differences (+/-10%) of the heuristic maximum;\n"
      "elasticity = (d alpha*/alpha*) / (d param/param).");

  const double base = heuristic_max(graph, demands, scenario.bucket,
                                    scenario.deadline);
  const double h = 0.10;

  struct Row {
    std::string name;
    double up;
    double down;
  };
  std::vector<Row> probes;
  probes.push_back(
      {"deadline D",
       heuristic_max(graph, demands, scenario.bucket,
                     scenario.deadline * (1.0 + h)),
       heuristic_max(graph, demands, scenario.bucket,
                     scenario.deadline * (1.0 - h))});
  probes.push_back(
      {"burst T",
       heuristic_max(graph, demands,
                     traffic::LeakyBucket(scenario.bucket.burst * (1.0 + h),
                                          scenario.bucket.rate),
                     scenario.deadline),
       heuristic_max(graph, demands,
                     traffic::LeakyBucket(scenario.bucket.burst * (1.0 - h),
                                          scenario.bucket.rate),
                     scenario.deadline)});
  probes.push_back(
      {"rate rho",
       heuristic_max(graph, demands,
                     traffic::LeakyBucket(scenario.bucket.burst,
                                          scenario.bucket.rate * (1.0 + h)),
                     scenario.deadline),
       heuristic_max(graph, demands,
                     traffic::LeakyBucket(scenario.bucket.burst,
                                          scenario.bucket.rate * (1.0 - h)),
                     scenario.deadline)});

  util::TextTable table({"parameter", "alpha* at -10%", "alpha* (base)",
                         "alpha* at +10%", "elasticity"});
  std::vector<std::vector<std::string>> rows;
  for (const Row& probe : probes) {
    const double elasticity = (probe.up - probe.down) / (2.0 * h) / base;
    rows.push_back({probe.name, util::TextTable::fmt(probe.down, 3),
                    util::TextTable::fmt(base, 3),
                    util::TextTable::fmt(probe.up, 3),
                    util::TextTable::fmt(elasticity, 2)});
    table.add_row(rows.back());
  }
  bench::emit(table,
              {"parameter", "alpha_minus", "alpha_base", "alpha_plus",
               "elasticity"},
              rows, "sensitivity");
  std::printf(
      "\nReading: T/rho enter the bound only through T/rho (the burst\n"
      "drain time), so their elasticities are nearly equal and opposite;\n"
      "D has diminishing returns (Fig. A's concavity, differentiated).\n");
  return 0;
}
