// Extension figure H: statistical admission control (Section 7 outlook).
// (1) Chernoff overbooking factors across activity factors and overload
//     targets — how many extra on/off flows the statistical test admits
//     over the deterministic peak-rate reservation.
// (2) Packet-level validation: admit to each controller's limit on a
//     bottleneck link, drive on/off sources, and measure the deadline
//     miss fraction. Deterministic must be miss-free; statistical must
//     keep misses near the configured epsilon.

#include "admission/statistical_controller.hpp"
#include "analysis/statistical.hpp"
#include "bench_common.hpp"
#include "sim/network_sim.hpp"
#include "traffic/service_class.hpp"

using namespace ubac;

namespace {

void overbooking_table() {
  bench::print_header(
      "Fig. H1 (extension): Chernoff overbooking factor",
      "alpha=0.30 of a 100 Mb/s link, voice peak 32 kb/s (deterministic\n"
      "limit 937 flows); rows = activity factor, columns = overload target.");

  util::TextTable table({"activity", "eps=1e-9", "eps=1e-6", "eps=1e-3"});
  std::vector<std::vector<std::string>> rows;
  for (const double activity : {0.2, 0.3, 0.4, 0.5, 0.7}) {
    std::vector<std::string> row{util::TextTable::fmt(activity, 1)};
    for (const double eps : {1e-9, 1e-6, 1e-3}) {
      const auto limit = analysis::statistical_flow_limit(
          0.30, units::mbps(100), units::kbps(32), activity, eps);
      row.push_back(std::to_string(limit) + " (" +
                    util::TextTable::fmt(
                        analysis::overbooking_factor(
                            0.30, units::mbps(100), units::kbps(32), activity,
                            eps),
                        2) +
                    "x)");
    }
    rows.push_back(row);
    table.add_row(row);
  }
  bench::emit(table, {"activity", "eps_1e9", "eps_1e6", "eps_1e3"}, rows,
              "statistical_overbooking");
}

void simulation_validation() {
  bench::print_header(
      "Fig. H2 (extension): measured deadline misses under overbooking",
      "Star of 10 Mb/s links: 5 ingress routers -> hub -> egress; voice\n"
      "gets alpha=0.90 of the shared hub link, so exceeding the share is\n"
      "(nearly) exceeding capacity. On/off sources, activity 0.4 (400 ms\n"
      "talk / 600 ms silence), 30 s simulated. 'mean-rate' books flows by\n"
      "average rate only, ignoring on/off variance.");

  const std::size_t fan_in = 5;
  const BitsPerSecond link = units::mbps(10);
  const auto topo = net::star(fan_in + 1, link);
  const net::ServerGraph graph(topo, static_cast<std::uint32_t>(fan_in + 1));
  const traffic::LeakyBucket voice(640.0, units::kbps(32));
  const Seconds deadline = units::milliseconds(20);
  const double alpha = 0.90;
  const double activity = 0.4;
  const auto classes = traffic::ClassSet::two_class(voice, deadline, alpha);
  const auto egress = static_cast<net::NodeId>(fan_in + 1);

  const auto deterministic_limit =
      static_cast<std::size_t>(alpha * link / voice.rate);

  struct Variant {
    std::string name;
    std::size_t population;
  };
  std::vector<Variant> variants{
      {"deterministic (peak rate)", deterministic_limit},
      {"statistical eps=1e-4",
       analysis::statistical_flow_limit(alpha, link, voice.rate, activity,
                                        1e-4)},
      {"statistical eps=1e-2",
       analysis::statistical_flow_limit(alpha, link, voice.rate, activity,
                                        1e-2)},
      {"mean-rate booking (no variance)",
       static_cast<std::size_t>(alpha * link / (activity * voice.rate))}};

  util::TextTable out({"controller", "admitted flows", "packets",
                       "worst e2e", "misses", "miss fraction"});
  std::vector<std::vector<std::string>> rows;
  for (const auto& variant : variants) {
    sim::NetworkSim netsim(graph, classes);
    for (std::size_t f = 0; f < variant.population; ++f) {
      // Spread ingress round-robin over the 5 source leaves (1..5).
      const auto leaf = static_cast<net::NodeId>(1 + f % fan_in);
      sim::SourceConfig src;
      src.model = sim::SourceModel::kOnOff;
      src.packet_size = 640.0;
      src.on_mean = 0.4;
      src.off_mean = 0.6;
      src.stop = sim::to_sim_time(30.0);
      src.seed = 1000 + f;
      netsim.add_flow(graph.map_path({leaf, 0, egress}), 0, src);
    }
    const auto results = netsim.run(31.0);
    std::size_t misses = 0;
    for (const double d : results.class_delay[0].values())
      if (d > deadline) ++misses;
    const double total =
        std::max<std::size_t>(1, results.class_delay[0].count());
    rows.push_back(
        {variant.name, std::to_string(variant.population),
         std::to_string(results.packets_delivered),
         util::TextTable::fmt_ms(results.class_delay[0].max()),
         std::to_string(misses),
         util::TextTable::fmt(static_cast<double>(misses) / total, 6)});
    out.add_row(rows.back());
  }
  bench::emit(out,
              {"controller", "flows", "packets", "worst_e2e_ms", "misses",
               "miss_fraction"},
              rows, "statistical_misses");
}

}  // namespace

int main() {
  overbooking_table();
  simulation_validation();
  return 0;
}
