// Extension figure N: configuration cost at scale. The paper's pitch is
// that the expensive analysis happens once, offline; this bench shows the
// offline cost itself stays tractable as the network grows — full
// maximum-utilization searches (binary search x route selection x fixed
// point) on random ISP-like graphs of increasing size, with wall time.
//
// Options:
//   --nodes=10,20,30,40   comma-separated graph sizes (CI uses a reduced
//                         list to keep the smoke job fast)
//   --threads=N           candidate-scoring threads (0 = hardware)
//   --json[=path]         also write the BENCH rows as JSON
//                         (default path BENCH_scale.json)

#include <chrono>
#include <sstream>

#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "routing/max_util_search.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace ubac;

namespace {

std::vector<std::size_t> parse_sizes(const std::string& spec) {
  std::vector<std::size_t> sizes;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) sizes.push_back(std::stoul(item));
  if (sizes.empty()) throw std::invalid_argument("--nodes: empty list");
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  args.describe("nodes", "comma-separated graph sizes (default 10,20,30,40)")
      .describe("threads", "candidate-scoring threads (default 0 = hardware)")
      .describe("json", "write BENCH rows as JSON (default BENCH_scale.json)")
      .describe("trace-out", bench::kTraceOutHelp);
  args.validate();
  bench::ScopedBenchTracing tracing(args);

  const auto sizes = parse_sizes(args.get("nodes", "10,20,30,40"));
  const auto threads =
      static_cast<std::size_t>(args.get_long("threads", 0));
  util::ThreadPool pool(threads);

  const bench::VoipScenario scenario;
  bench::print_header(
      "Fig. N (extension): configuration cost vs network size",
      "Random connected graphs (avg degree 3.5), all-ordered-pairs voice\n"
      "demands; full max-utilization search (SP and heuristic k=4) with\n"
      "wall-clock time per search.");

  util::TextTable table({"nodes", "demands", "links", "L", "SP alpha*",
                         "SP time", "heuristic alpha*", "heuristic time"});
  std::vector<std::vector<std::string>> rows;
  std::vector<bench::BenchSummary> summaries;

  for (const std::size_t nodes : sizes) {
    const auto topo = net::random_connected(nodes, 3.5, 42 + nodes);
    const net::ServerGraph graph(topo);
    const auto demands = traffic::all_ordered_pairs(topo);
    const int l = net::diameter(topo);

    const auto t0 = std::chrono::steady_clock::now();
    const auto sp = routing::maximize_utilization_shortest_path(
        graph, scenario.bucket, scenario.deadline, demands);
    const auto t1 = std::chrono::steady_clock::now();
    routing::HeuristicOptions opts;
    opts.candidates_per_pair = 4;
    opts.pool = &pool;
    const auto heuristic = routing::maximize_utilization_heuristic(
        graph, scenario.bucket, scenario.deadline, demands, opts);
    const auto t2 = std::chrono::steady_clock::now();

    auto elapsed_ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    const double sp_ms = elapsed_ms(t0, t1);
    const double heuristic_ms = elapsed_ms(t1, t2);
    rows.push_back({std::to_string(nodes), std::to_string(demands.size()),
                    std::to_string(topo.link_count()), std::to_string(l),
                    util::TextTable::fmt(sp.max_alpha, 3),
                    util::TextTable::fmt(sp_ms, 0) + " ms",
                    util::TextTable::fmt(heuristic.max_alpha, 3),
                    util::TextTable::fmt(heuristic_ms, 0) + " ms"});
    table.add_row(rows.back());

    bench::BenchSummary summary("scale");
    summary.set("nodes", static_cast<std::uint64_t>(nodes))
        .set("demands", static_cast<std::uint64_t>(demands.size()))
        .set("links", static_cast<std::uint64_t>(topo.link_count()))
        .set("diameter", static_cast<std::uint64_t>(l))
        .set("threads", static_cast<std::uint64_t>(pool.thread_count()))
        .set("sp_alpha", sp.max_alpha, 4)
        .set("sp_ms", sp_ms, 1)
        .set("heuristic_alpha", heuristic.max_alpha, 4)
        .set("heuristic_ms", heuristic_ms, 1)
        .set("heuristic_probes",
             static_cast<std::uint64_t>(heuristic.probes))
        .set("heuristic_reverify_hits",
             static_cast<std::uint64_t>(heuristic.reverify_hits));
    std::printf("%s\n", summary.line().c_str());
    summaries.push_back(std::move(summary));
  }
  bench::emit(table,
              {"nodes", "demands", "links", "diameter", "sp_alpha", "sp_ms",
               "heuristic_alpha", "heuristic_ms"},
              rows, "scale");
  if (args.has("json"))
    bench::write_summary_json(args.get("json", "BENCH_scale.json"), "scale",
                              summaries);
  return 0;
}
