// Extension figure N: configuration cost at scale. The paper's pitch is
// that the expensive analysis happens once, offline; this bench shows the
// offline cost itself stays tractable as the network grows — full
// maximum-utilization searches (binary search x route selection x fixed
// point) on random ISP-like graphs of increasing size, with wall time.

#include <chrono>

#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

int main() {
  const bench::VoipScenario scenario;
  bench::print_header(
      "Fig. N (extension): configuration cost vs network size",
      "Random connected graphs (avg degree 3.5), all-ordered-pairs voice\n"
      "demands; full max-utilization search (SP and heuristic k=4) with\n"
      "wall-clock time per search.");

  util::TextTable table({"nodes", "demands", "links", "L", "SP alpha*",
                         "SP time", "heuristic alpha*", "heuristic time"});
  std::vector<std::vector<std::string>> rows;

  for (const std::size_t nodes : {10, 20, 30, 40}) {
    const auto topo = net::random_connected(nodes, 3.5, 42 + nodes);
    const net::ServerGraph graph(topo);
    const auto demands = traffic::all_ordered_pairs(topo);
    const int l = net::diameter(topo);

    const auto t0 = std::chrono::steady_clock::now();
    const auto sp = routing::maximize_utilization_shortest_path(
        graph, scenario.bucket, scenario.deadline, demands);
    const auto t1 = std::chrono::steady_clock::now();
    routing::HeuristicOptions opts;
    opts.candidates_per_pair = 4;
    const auto heuristic = routing::maximize_utilization_heuristic(
        graph, scenario.bucket, scenario.deadline, demands, opts);
    const auto t2 = std::chrono::steady_clock::now();

    auto ms = [](auto a, auto b) {
      return util::TextTable::fmt(
                 std::chrono::duration<double, std::milli>(b - a).count(),
                 0) +
             " ms";
    };
    rows.push_back({std::to_string(nodes), std::to_string(demands.size()),
                    std::to_string(topo.link_count()), std::to_string(l),
                    util::TextTable::fmt(sp.max_alpha, 3), ms(t0, t1),
                    util::TextTable::fmt(heuristic.max_alpha, 3),
                    ms(t1, t2)});
    table.add_row(rows.back());
  }
  bench::emit(table,
              {"nodes", "demands", "links", "diameter", "sp_alpha", "sp_ms",
               "heuristic_alpha", "heuristic_ms"},
              rows, "scale");
  return 0;
}
