// Extension figure F2 (google-benchmark): per-request admission cost.
// The paper's scalability claim in microbenchmark form — the
// utilization-based decision costs O(route length) independent of the
// established flow population, while a flow-aware (intserv-style) baseline
// re-analyzes the population and scales with it.

#include <benchmark/benchmark.h>

#include <optional>

#include "admission/controller.hpp"
#include "admission/intserv_baseline.hpp"
#include "bench_common.hpp"
#include "routing/route_selection.hpp"

using namespace ubac;

namespace {

struct Setup {
  net::Topology topo = net::mci_backbone();
  net::ServerGraph graph{topo, 6u};
  bench::VoipScenario scenario;
  traffic::ClassSet classes = traffic::ClassSet::two_class(
      scenario.bucket, scenario.deadline, 0.40);
  std::vector<traffic::Demand> demands = traffic::all_ordered_pairs(topo);
  admission::RoutingTable table;

  Setup() {
    const auto selection = routing::select_routes_shortest_path(
        graph, 0.40, scenario.bucket, scenario.deadline, demands);
    table = admission::RoutingTable(demands, selection.server_routes);
  }
};

const Setup& setup() {
  static const Setup instance;
  return instance;
}

/// Pre-admit `population` flows round-robin over the demands.
template <typename Controller>
std::size_t preload(Controller& controller,
                    const std::vector<traffic::Demand>& demands,
                    std::int64_t population) {
  std::size_t admitted = 0;
  std::size_t i = 0;
  // Cap attempts so saturated configurations terminate.
  for (std::int64_t attempt = 0;
       attempt < 4 * population && admitted < static_cast<std::size_t>(population);
       ++attempt) {
    const auto& d = demands[i++ % demands.size()];
    if constexpr (std::is_same_v<Controller, admission::AdmissionController>) {
      if (controller.request(d.src, d.dst, d.class_index).admitted())
        ++admitted;
    } else {
      if (controller.request(d.src, d.dst, d.class_index) != 0) ++admitted;
    }
  }
  return admitted;
}

void BM_UtilizationBasedAdmission(benchmark::State& state) {
  const Setup& s = setup();
  admission::AdmissionController controller(s.graph, s.classes, s.table);
  preload(controller, s.demands, state.range(0));
  // Steady state: admit + immediately release so the population is stable.
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = s.demands[i++ % s.demands.size()];
    const auto decision = controller.request(d.src, d.dst, d.class_index);
    benchmark::DoNotOptimize(decision);
    if (decision.admitted()) controller.release(decision.flow_id);
  }
  state.SetLabel("flows=" + std::to_string(controller.active_flows()));
}

void BM_IntservBaselineAdmission(benchmark::State& state) {
  const Setup& s = setup();
  admission::IntservBaselineController controller(s.graph, s.classes,
                                                  s.table);
  preload(controller, s.demands, state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = s.demands[i++ % s.demands.size()];
    const auto id = controller.request(d.src, d.dst, d.class_index);
    benchmark::DoNotOptimize(id);
    if (id != 0) controller.release(id);
  }
  state.SetLabel("flows=" + std::to_string(controller.active_flows()));
}

}  // namespace

BENCHMARK(BM_UtilizationBasedAdmission)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_IntservBaselineAdmission)
    ->Arg(100)
    ->Arg(300)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
