// Extension figure D: ablation of the Section 5.2 heuristic rules.
// Each row switches one ingredient off (pair ordering by distance,
// acyclicity preference, min-delay candidate choice) or varies the
// candidate count k, and reports the maximum utilization reached on the
// Table 1 workload. This isolates where the heuristic's advantage over SP
// comes from.

#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "routing/least_loaded.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);

  bench::print_header(
      "Fig. D (extension): heuristic ablation (Table 1 workload)",
      "Max utilization of Section 5.2 variants on the MCI backbone.");

  struct Variant {
    std::string name;
    routing::HeuristicOptions opts;
  };
  std::vector<Variant> variants;
  {
    Variant v{"full heuristic (k=8)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"no distance ordering", {}};
    v.opts.order_by_distance = false;
    variants.push_back(v);
  }
  {
    Variant v{"no acyclicity preference", {}};
    v.opts.prefer_acyclic = false;
    variants.push_back(v);
  }
  {
    Variant v{"first-feasible candidate", {}};
    v.opts.pick_min_delay = false;
    variants.push_back(v);
  }
  for (const std::size_t k : {1u, 2u, 4u, 16u}) {
    Variant v{"k=" + std::to_string(k), {}};
    v.opts.candidates_per_pair = k;
    variants.push_back(v);
  }

  util::TextTable table({"variant", "max utilization", "probes"});
  std::vector<std::vector<std::string>> rows;
  for (const auto& variant : variants) {
    const auto result = routing::maximize_utilization_heuristic(
        graph, scenario.bucket, scenario.deadline, demands, variant.opts);
    rows.push_back({variant.name, util::TextTable::fmt(result.max_alpha, 3),
                    std::to_string(result.probes)});
    table.add_row(rows.back());
  }
  const auto sp = routing::maximize_utilization_shortest_path(
      graph, scenario.bucket, scenario.deadline, demands);
  rows.push_back({"(SP baseline)", util::TextTable::fmt(sp.max_alpha, 3),
                  std::to_string(sp.probes)});
  table.add_row(rows.back());

  // Randomized restarts: recover tie-order robustness without backtracking.
  const auto restarts = routing::maximize_utilization(
      6.0, net::diameter(topo), scenario.bucket, scenario.deadline,
      [&](double alpha) {
        return routing::select_routes_heuristic_restarts(
            graph, alpha, scenario.bucket, scenario.deadline, demands, 4);
      });
  rows.push_back({"4 randomized restarts",
                  util::TextTable::fmt(restarts.max_alpha, 3),
                  std::to_string(restarts.probes)});
  table.add_row(rows.back());

  // Load-adaptive Dijkstra baseline: spreads load but is delay-blind.
  const auto least_loaded = routing::maximize_utilization(
      6.0, net::diameter(topo), scenario.bucket, scenario.deadline,
      [&](double alpha) {
        return routing::select_routes_least_loaded(
            graph, alpha, scenario.bucket, scenario.deadline, demands);
      });
  rows.push_back({"(least-loaded baseline)",
                  util::TextTable::fmt(least_loaded.max_alpha, 3),
                  std::to_string(least_loaded.probes)});
  table.add_row(rows.back());

  bench::emit(table, {"variant", "max_alpha", "probes"}, rows,
              "heuristic_ablation");
  return 0;
}
