// Extension: ConcurrentAdmissionController stress harness.
// M threads hammer the run-time admission hot path with randomized
// admit/release churn over the configured MCI backbone; reports wall
// time, decisions/s, admits/s and the rejection breakdown per thread
// count. The single-thread row is the serialized baseline the paper's
// constant-cost claim was measured against; the multi-thread rows show
// how the atomic per-hop reservations and the sharded flow registry
// scale it across cores.
//
// Besides the human-readable table, every row is echoed as a stable
// machine-readable line (`BENCH concurrent_admission threads=...`) so CI
// can grep results without parsing the table. Flags:
//   --json[-out=<path>]     write BENCH_concurrent_admission.json
//   --metrics-out=<path>    run instrumented and export the telemetry
//                           snapshot (.prom/.json/.csv by extension)
//   --telemetry             run instrumented without exporting (overhead)
//   --ops-per-thread=<n>    churn length (default 200000; CI uses less)
//   --serve-port=<p>        expose /metrics, /healthz and /series on an
//                           embedded HTTP endpoint for the duration of the
//                           run (0 = ephemeral port), with a sampler
//                           refreshing the utilization gauges every tick —
//                           scrape the bench live while it churns

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "admission/controller.hpp"
#include "admission/telemetry.hpp"
#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "telemetry/event_trace.hpp"
#include "telemetry/http_endpoint.hpp"
#include "telemetry/timeseries.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace ubac;

namespace {

struct Churn {
  std::size_t admitted = 0;
  std::size_t util_rejected = 0;
  std::size_t released = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  args.describe("json", "write BENCH_concurrent_admission.json")
      .describe("json-out", "override the JSON output path")
      .describe("metrics-out",
                "instrument the controller and export the metrics snapshot "
                "(.prom/.json/.csv chosen by extension)")
      .describe("telemetry",
                "instrument the controller without exporting (overhead runs)")
      .describe("ops-per-thread", "churn operations per thread (default "
                                  "200000)")
      .describe("serve-port",
                "serve /metrics, /healthz and /series on this port while "
                "the bench runs (0 = ephemeral)")
      .describe("trace-out", bench::kTraceOutHelp);
  args.validate();
  bench::ScopedBenchTracing tracing(args);

  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);
  std::vector<net::ServerPath> routes;
  for (const auto& d : demands)
    routes.push_back(
        graph.map_path(net::shortest_path(topo, d.src, d.dst).value()));
  const admission::RoutingTable table(demands, routes);
  // Table 1 heuristic share: links hold 0.32*C/rho = 1000 flows, so churn
  // runs near saturation and both admit and reject paths are hot.
  const auto classes = traffic::ClassSet::two_class(
      scenario.bucket, scenario.deadline, 0.32);

  const auto ops_per_thread = static_cast<std::size_t>(
      args.get_long("ops-per-thread", 200'000));
  const std::string metrics_out = args.get("metrics-out", "");
  const bool serving = args.has("serve-port");
  const bool instrumented = !metrics_out.empty() ||
                            args.get_bool("telemetry", false) || serving;

  telemetry::MetricsRegistry registry;
  // Sampled trace: the full churn would recycle any reasonable ring many
  // times over, so keep ~1% of events — enough to eyeball admit/reject
  // interleaving without measurable hot-path cost.
  telemetry::EventTracer tracer(8192, 0.01);

  // --serve-port: scrape endpoint + background sampler for the whole run.
  // The gauge hook reads whichever controller row is currently live (the
  // controller is rebuilt per thread count), guarded against teardown.
  std::mutex live_ctl_mutex;
  admission::AdmissionController* live_ctl = nullptr;
  std::unique_ptr<telemetry::TelemetrySampler> sampler;
  std::unique_ptr<telemetry::HttpEndpoint> endpoint;
  if (serving) {
    sampler = std::make_unique<telemetry::TelemetrySampler>(registry);
    sampler->add_tick_hook([&registry, &live_ctl_mutex, &live_ctl] {
      std::lock_guard<std::mutex> lock(live_ctl_mutex);
      if (live_ctl != nullptr)
        admission::update_utilization_gauges(registry, "concurrent",
                                             *live_ctl);
    });
    telemetry::HttpEndpoint::Options http_options;
    http_options.port =
        static_cast<std::uint16_t>(args.get_long("serve-port", 0));
    endpoint = std::make_unique<telemetry::HttpEndpoint>(http_options);
    telemetry::install_standard_routes(*endpoint, registry, sampler.get(),
                                       nullptr);
    sampler->start();
    endpoint->start();
    std::printf("scrape endpoint: http://127.0.0.1:%u (for the duration of "
                "the run)\n",
                endpoint->port());
  }

  bench::print_header(
      "Concurrent admission stress: admits/sec vs thread count",
      "MCI backbone, all-pairs shortest routes, alpha=0.32; each thread\n"
      "runs randomized admit/release churn (60% admit bias) against one\n"
      "shared controller. hardware_concurrency is the ceiling on real\n"
      "parallelism; counts are exact regardless.");
  std::printf("hardware threads available: %u\ntelemetry: %s\n\n",
              std::thread::hardware_concurrency(),
              instrumented ? "on" : "off");

  util::TextTable out({"threads", "ops", "wall s", "decisions/s", "admits/s",
                       "admitted", "util-rejected", "released",
                       "leftover flows"});
  std::vector<std::vector<std::string>> rows;
  std::vector<bench::BenchSummary> summaries;

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    admission::AdmissionController ctl(graph, classes, table);
    admission::ControllerTelemetry ctl_telemetry(registry, "concurrent",
                                                 &tracer);
    if (instrumented) ctl.attach_telemetry(&ctl_telemetry);
    if (serving) {
      std::lock_guard<std::mutex> lock(live_ctl_mutex);
      live_ctl = &ctl;
    }
    std::vector<Churn> churn(threads);
    std::vector<std::vector<traffic::FlowId>> held(threads);
    util::ThreadPool pool(threads);

    const auto start = std::chrono::steady_clock::now();
    pool.parallel_for(threads, [&](std::size_t t) {
      util::Xoshiro256 rng(0xBEEF + t);
      auto& mine = held[t];
      Churn& c = churn[t];
      for (std::size_t k = 0; k < ops_per_thread; ++k) {
        if (!mine.empty() && rng.bernoulli(0.4)) {
          const auto pos = rng.uniform_index(mine.size());
          ctl.release(mine[pos]);
          ++c.released;
          mine[pos] = mine.back();
          mine.pop_back();
        } else {
          const auto& d = demands[rng.uniform_index(demands.size())];
          const auto decision = ctl.request(d.src, d.dst, d.class_index);
          if (decision.admitted()) {
            mine.push_back(decision.flow_id);
            ++c.admitted;
          } else {
            ++c.util_rejected;
          }
        }
      }
    });
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    if (instrumented)
      admission::update_utilization_gauges(registry, "concurrent", ctl);

    Churn total;
    for (const auto& c : churn) {
      total.admitted += c.admitted;
      total.util_rejected += c.util_rejected;
      total.released += c.released;
    }
    const double ops =
        static_cast<double>(ops_per_thread * threads);
    rows.push_back({std::to_string(threads),
                    util::TextTable::fmt(ops, 0),
                    util::TextTable::fmt(wall.count(), 3),
                    util::TextTable::fmt(ops / wall.count(), 0),
                    util::TextTable::fmt(
                        static_cast<double>(total.admitted) / wall.count(), 0),
                    std::to_string(total.admitted),
                    std::to_string(total.util_rejected),
                    std::to_string(total.released),
                    std::to_string(ctl.active_flows())});
    out.add_row(rows.back());

    summaries.emplace_back("concurrent_admission");
    summaries.back()
        .set("threads", static_cast<std::uint64_t>(threads))
        .set("ops", static_cast<std::uint64_t>(ops_per_thread * threads))
        .set("wall_s", wall.count(), 6)
        .set("decisions_per_s", ops / wall.count(), 0)
        .set("admits_per_s",
             static_cast<double>(total.admitted) / wall.count(), 0)
        .set("admitted", static_cast<std::uint64_t>(total.admitted))
        .set("util_rejected",
             static_cast<std::uint64_t>(total.util_rejected))
        .set("released", static_cast<std::uint64_t>(total.released))
        .set("leftover_flows",
             static_cast<std::uint64_t>(ctl.active_flows()))
        .set("telemetry", instrumented ? "on" : "off");
    if (serving) {
      // This row's controller is about to be destroyed; stop the sampler
      // hook from touching it.
      std::lock_guard<std::mutex> lock(live_ctl_mutex);
      live_ctl = nullptr;
    }
  }

  bench::emit(out,
              {"threads", "ops", "wall_s", "decisions_per_s", "admits_per_s",
               "admitted", "util_rejected", "released", "leftover_flows"},
              rows, "concurrent_admission");

  for (const auto& s : summaries) std::printf("%s\n", s.line().c_str());

  if (args.get_bool("json", false) || args.has("json-out")) {
    const std::string path =
        args.get("json-out", "BENCH_concurrent_admission.json");
    bench::write_summary_json(path, "concurrent_admission", summaries);
  }
  if (!metrics_out.empty())
    bench::export_metrics(registry.snapshot(), metrics_out);
  if (serving) {
    std::printf("scrape endpoint: %llu requests served\n",
                static_cast<unsigned long long>(endpoint->requests_served()));
    endpoint->stop();
    sampler->stop();
  }
  return 0;
}
