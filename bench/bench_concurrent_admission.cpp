// Extension: ConcurrentAdmissionController stress harness.
// M threads hammer the run-time admission hot path with randomized
// admit/release churn over the configured MCI backbone; reports wall
// time, decisions/s, admits/s and the rejection breakdown per thread
// count. The single-thread row is the serialized baseline the paper's
// constant-cost claim was measured against; the multi-thread rows show
// how the atomic per-hop reservations and the sharded flow registry
// scale it across cores.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "admission/controller.hpp"
#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace ubac;

namespace {

struct Churn {
  std::size_t admitted = 0;
  std::size_t util_rejected = 0;
  std::size_t released = 0;
};

}  // namespace

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);
  std::vector<net::ServerPath> routes;
  for (const auto& d : demands)
    routes.push_back(
        graph.map_path(net::shortest_path(topo, d.src, d.dst).value()));
  const admission::RoutingTable table(demands, routes);
  // Table 1 heuristic share: links hold 0.32*C/rho = 1000 flows, so churn
  // runs near saturation and both admit and reject paths are hot.
  const auto classes = traffic::ClassSet::two_class(
      scenario.bucket, scenario.deadline, 0.32);

  constexpr std::size_t kOpsPerThread = 200'000;

  bench::print_header(
      "Concurrent admission stress: admits/sec vs thread count",
      "MCI backbone, all-pairs shortest routes, alpha=0.32; each thread\n"
      "runs randomized admit/release churn (60% admit bias) against one\n"
      "shared controller. hardware_concurrency is the ceiling on real\n"
      "parallelism; counts are exact regardless.");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  util::TextTable out({"threads", "ops", "wall s", "decisions/s", "admits/s",
                       "admitted", "util-rejected", "released",
                       "leftover flows"});
  std::vector<std::vector<std::string>> rows;

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    admission::AdmissionController ctl(graph, classes, table);
    std::vector<Churn> churn(threads);
    std::vector<std::vector<traffic::FlowId>> held(threads);
    util::ThreadPool pool(threads);

    const auto start = std::chrono::steady_clock::now();
    pool.parallel_for(threads, [&](std::size_t t) {
      util::Xoshiro256 rng(0xBEEF + t);
      auto& mine = held[t];
      Churn& c = churn[t];
      for (std::size_t k = 0; k < kOpsPerThread; ++k) {
        if (!mine.empty() && rng.bernoulli(0.4)) {
          const auto pos = rng.uniform_index(mine.size());
          ctl.release(mine[pos]);
          ++c.released;
          mine[pos] = mine.back();
          mine.pop_back();
        } else {
          const auto& d = demands[rng.uniform_index(demands.size())];
          const auto decision = ctl.request(d.src, d.dst, d.class_index);
          if (decision.admitted()) {
            mine.push_back(decision.flow_id);
            ++c.admitted;
          } else {
            ++c.util_rejected;
          }
        }
      }
    });
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;

    Churn total;
    for (const auto& c : churn) {
      total.admitted += c.admitted;
      total.util_rejected += c.util_rejected;
      total.released += c.released;
    }
    const double ops =
        static_cast<double>(kOpsPerThread * threads);
    rows.push_back({std::to_string(threads),
                    util::TextTable::fmt(ops, 0),
                    util::TextTable::fmt(wall.count(), 3),
                    util::TextTable::fmt(ops / wall.count(), 0),
                    util::TextTable::fmt(
                        static_cast<double>(total.admitted) / wall.count(), 0),
                    std::to_string(total.admitted),
                    std::to_string(total.util_rejected),
                    std::to_string(total.released),
                    std::to_string(ctl.active_flows())});
    out.add_row(rows.back());
  }

  bench::emit(out,
              {"threads", "ops", "wall_s", "decisions_per_s", "admits_per_s",
               "admitted", "util_rejected", "released", "leftover_flows"},
              rows, "concurrent_admission");
  return 0;
}
