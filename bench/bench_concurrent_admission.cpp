// Extension: ConcurrentAdmissionController stress harness.
// M threads hammer the run-time admission hot path with randomized
// admit/release churn over the configured MCI backbone; reports wall
// time, decisions/s, admits/s and the rejection breakdown per thread
// count. The single-thread row is the serialized baseline the paper's
// constant-cost claim was measured against; the multi-thread rows show
// how the atomic per-hop reservations and the sharded flow registry
// scale it across cores.
//
// Besides the human-readable table, every row is echoed as a stable
// machine-readable line (`BENCH concurrent_admission threads=...`) so CI
// can grep results without parsing the table. Flags:
//   --json[-out=<path>]     write BENCH_concurrent_admission.json
//   --metrics-out=<path>    run instrumented and export the telemetry
//                           snapshot (.prom/.json/.csv by extension)
//   --telemetry             run instrumented without exporting (overhead)
//   --ops-per-thread=<n>    churn length (default 200000; CI uses less)
//   --serve-port=<p>        expose /metrics, /healthz and /series on an
//                           embedded HTTP endpoint for the duration of the
//                           run (0 = ephemeral port), with a sampler
//                           refreshing the utilization gauges every tick —
//                           scrape the bench live while it churns

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "admission/controller.hpp"
#include "admission/sequential_controller.hpp"
#include "admission/telemetry.hpp"
#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "telemetry/event_trace.hpp"
#include "telemetry/http_endpoint.hpp"
#include "telemetry/timeseries.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace ubac;

namespace {

struct Churn {
  std::size_t admitted = 0;
  std::size_t util_rejected = 0;
  std::size_t released = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  args.describe("json", "write BENCH_concurrent_admission.json")
      .describe("json-out", "override the JSON output path")
      .describe("metrics-out",
                "instrument the controller and export the metrics snapshot "
                "(.prom/.json/.csv chosen by extension)")
      .describe("telemetry",
                "instrument the controller without exporting (overhead runs)")
      .describe("ops-per-thread", "churn operations per thread (default "
                                  "200000)")
      .describe("serve-port",
                "serve /metrics, /healthz and /series on this port while "
                "the bench runs (0 = ephemeral)")
      .describe("trace-out", bench::kTraceOutHelp);
  args.validate();
  bench::ScopedBenchTracing tracing(args);

  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);
  std::vector<net::ServerPath> routes;
  for (const auto& d : demands)
    routes.push_back(
        graph.map_path(net::shortest_path(topo, d.src, d.dst).value()));
  const admission::RoutingTable table(demands, routes);
  // Table 1 heuristic share: links hold 0.32*C/rho = 1000 flows, so churn
  // runs near saturation and both admit and reject paths are hot.
  const auto classes = traffic::ClassSet::two_class(
      scenario.bucket, scenario.deadline, 0.32);

  const auto ops_per_thread = static_cast<std::size_t>(
      args.get_long("ops-per-thread", 200'000));
  const std::string metrics_out = args.get("metrics-out", "");
  const bool serving = args.has("serve-port");
  const bool instrumented = !metrics_out.empty() ||
                            args.get_bool("telemetry", false) || serving;

  telemetry::MetricsRegistry registry;
  // Sampled trace: the full churn would recycle any reasonable ring many
  // times over, so keep ~1% of events — enough to eyeball admit/reject
  // interleaving without measurable hot-path cost.
  telemetry::EventTracer tracer(8192, 0.01);

  // --serve-port: scrape endpoint + background sampler for the whole run.
  // The gauge hook reads whichever controller row is currently live (the
  // controller is rebuilt per thread count), guarded against teardown.
  std::mutex live_ctl_mutex;
  admission::AdmissionController* live_ctl = nullptr;
  std::unique_ptr<telemetry::TelemetrySampler> sampler;
  std::unique_ptr<telemetry::HttpEndpoint> endpoint;
  if (serving) {
    sampler = std::make_unique<telemetry::TelemetrySampler>(registry);
    sampler->add_tick_hook([&registry, &live_ctl_mutex, &live_ctl] {
      std::lock_guard<std::mutex> lock(live_ctl_mutex);
      if (live_ctl != nullptr)
        admission::update_utilization_gauges(registry, "concurrent",
                                             *live_ctl);
    });
    telemetry::HttpEndpoint::Options http_options;
    http_options.port =
        static_cast<std::uint16_t>(args.get_long("serve-port", 0));
    endpoint = std::make_unique<telemetry::HttpEndpoint>(http_options);
    telemetry::install_standard_routes(*endpoint, registry, sampler.get(),
                                       nullptr);
    sampler->start();
    endpoint->start();
    std::printf("scrape endpoint: http://127.0.0.1:%u (for the duration of "
                "the run)\n",
                endpoint->port());
  }

  bench::print_header(
      "Concurrent admission stress: admits/sec vs thread count",
      "MCI backbone, all-pairs shortest routes, alpha=0.32; each thread\n"
      "runs randomized admit/release churn (60% admit bias) against one\n"
      "shared controller. hardware_concurrency is the ceiling on real\n"
      "parallelism; counts are exact regardless.");
  std::printf("hardware threads available: %u\ntelemetry: %s\n\n",
              std::thread::hardware_concurrency(),
              instrumented ? "on" : "off");

  util::TextTable out({"threads", "ops", "wall s", "decisions/s", "admits/s",
                       "admitted", "util-rejected", "released",
                       "leftover flows"});
  std::vector<std::vector<std::string>> rows;
  std::vector<bench::BenchSummary> summaries;

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    admission::AdmissionController ctl(graph, classes, table);
    admission::ControllerTelemetry ctl_telemetry(registry, "concurrent",
                                                 &tracer);
    if (instrumented) ctl.attach_telemetry(&ctl_telemetry);
    if (serving) {
      std::lock_guard<std::mutex> lock(live_ctl_mutex);
      live_ctl = &ctl;
    }
    std::vector<Churn> churn(threads);
    std::vector<std::vector<traffic::FlowId>> held(threads);
    util::ThreadPool pool(threads);

    const auto start = std::chrono::steady_clock::now();
    pool.parallel_for(threads, [&](std::size_t t) {
      util::Xoshiro256 rng(0xBEEF + t);
      auto& mine = held[t];
      Churn& c = churn[t];
      for (std::size_t k = 0; k < ops_per_thread; ++k) {
        if (!mine.empty() && rng.bernoulli(0.4)) {
          const auto pos = rng.uniform_index(mine.size());
          ctl.release(mine[pos]);
          ++c.released;
          mine[pos] = mine.back();
          mine.pop_back();
        } else {
          const auto& d = demands[rng.uniform_index(demands.size())];
          const auto decision = ctl.request(d.src, d.dst, d.class_index);
          if (decision.admitted()) {
            mine.push_back(decision.flow_id);
            ++c.admitted;
          } else {
            ++c.util_rejected;
          }
        }
      }
    });
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    if (instrumented)
      admission::update_utilization_gauges(registry, "concurrent", ctl);

    Churn total;
    for (const auto& c : churn) {
      total.admitted += c.admitted;
      total.util_rejected += c.util_rejected;
      total.released += c.released;
    }
    const double ops =
        static_cast<double>(ops_per_thread * threads);
    rows.push_back({std::to_string(threads),
                    util::TextTable::fmt(ops, 0),
                    util::TextTable::fmt(wall.count(), 3),
                    util::TextTable::fmt(ops / wall.count(), 0),
                    util::TextTable::fmt(
                        static_cast<double>(total.admitted) / wall.count(), 0),
                    std::to_string(total.admitted),
                    std::to_string(total.util_rejected),
                    std::to_string(total.released),
                    std::to_string(ctl.active_flows())});
    out.add_row(rows.back());

    summaries.emplace_back("concurrent_admission");
    summaries.back()
        .set("threads", static_cast<std::uint64_t>(threads))
        .set("ops", static_cast<std::uint64_t>(ops_per_thread * threads))
        .set("wall_s", wall.count(), 6)
        .set("decisions_per_s", ops / wall.count(), 0)
        .set("admits_per_s",
             static_cast<double>(total.admitted) / wall.count(), 0)
        .set("admitted", static_cast<std::uint64_t>(total.admitted))
        .set("util_rejected",
             static_cast<std::uint64_t>(total.util_rejected))
        .set("released", static_cast<std::uint64_t>(total.released))
        .set("leftover_flows",
             static_cast<std::uint64_t>(ctl.active_flows()))
        .set("telemetry", instrumented ? "on" : "off");
    if (serving) {
      // This row's controller is about to be destroyed; stop the sampler
      // hook from touching it.
      std::lock_guard<std::mutex> lock(live_ctl_mutex);
      live_ctl = nullptr;
    }
  }

  bench::emit(out,
              {"threads", "ops", "wall_s", "decisions_per_s", "admits_per_s",
               "admitted", "util_rejected", "released", "leftover_flows"},
              rows, "concurrent_admission");

  // ---- Integer fast path vs the double-precision oracle ------------------
  // Single-threaded saturated-regime replay: an untimed prefill drives
  // every route to capacity, then the timed schedule offers 1024 requests
  // per 2 released slots — the overload regime admission control exists
  // for, where the per-request cost is dominated by the decision itself.
  // Both schedules are pre-generated so the timed loops contain no RNG and
  // every row replays the identical operation sequence. The voice rate and
  // alpha*C budgets sit exactly on the fixed-point grid, so the integer
  // rows make decision-for-decision the same calls as the double oracle
  // and the speedup column compares equal work.
  struct FastOp {
    std::uint64_t pick = 0;   ///< release position seed (mod held count)
    std::uint32_t demand = 0; ///< admit demand index
    bool admit = false;
  };
  struct FastStats {
    std::size_t admitted = 0;
    std::size_t rejected = 0;
    std::size_t released = 0;
    std::size_t leftover = 0;
  };
  std::vector<FastOp> schedule;
  schedule.reserve(ops_per_thread);
  {
    util::Xoshiro256 rng(0xFA57);
    while (schedule.size() < ops_per_thread) {
      for (int r = 0; r < 2 && schedule.size() < ops_per_thread; ++r) {
        FastOp op;
        op.pick = rng.next();
        schedule.push_back(op);
      }
      for (int a = 0; a < 1024 && schedule.size() < ops_per_thread; ++a) {
        FastOp op;
        op.admit = true;
        op.demand =
            static_cast<std::uint32_t>(rng.uniform_index(demands.size()));
        schedule.push_back(op);
      }
    }
  }
  // Demands pre-resolved per schedule slot (admit ops only) so the batched
  // replay can hand admit_batch a contiguous span instead of re-copying
  // demands one by one inside the timed region.
  std::vector<traffic::Demand> schedule_demands(schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i)
    if (schedule[i].admit) schedule_demands[i] = demands[schedule[i].demand];
  // Maximal same-kind runs of the schedule, precomputed so the batched
  // replay iterates run boundaries instead of rescanning FastOps.
  struct FastSegment {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    bool admit = false;
  };
  std::vector<FastSegment> segments;
  for (std::size_t i = 0; i < schedule.size();) {
    std::size_t j = i;
    while (j < schedule.size() && schedule[j].admit == schedule[i].admit) ++j;
    segments.push_back(FastSegment{static_cast<std::uint32_t>(i),
                                   static_cast<std::uint32_t>(j),
                                   schedule[i].admit});
    i = j;
  }

  // Untimed prefill shared by every row: round-robin offers over every
  // configured demand until a full pass admits nothing, i.e. every route
  // is at capacity. Plain request() calls, so each controller starts the
  // timed replay from the identical saturated state.
  const auto run_prefill = [&](auto& ctl, std::vector<traffic::FlowId>& held) {
    for (;;) {
      std::size_t admitted_this_pass = 0;
      for (const auto& d : demands) {
        const auto decision = ctl.request(d.src, d.dst, d.class_index);
        if (decision.admitted()) {
          held.push_back(decision.flow_id);
          ++admitted_this_pass;
        }
      }
      if (admitted_this_pass == 0) return;
    }
  };

  // Per-call runner: the double oracle and the integer batch=1 row.
  // Returns the timed-region wall seconds through `wall_s`.
  const auto run_single = [&](auto& ctl, double& wall_s) {
    FastStats st;
    std::vector<traffic::FlowId> held;
    run_prefill(ctl, held);
    const auto start = std::chrono::steady_clock::now();
    for (const FastOp& op : schedule) {
      if (op.admit) {
        const auto& d = demands[op.demand];
        const auto decision = ctl.request(d.src, d.dst, d.class_index);
        if (decision.admitted()) {
          held.push_back(decision.flow_id);
          ++st.admitted;
        } else {
          ++st.rejected;
        }
      } else if (!held.empty()) {
        const auto pos =
            static_cast<std::size_t>(op.pick % held.size());
        ctl.release(held[pos]);
        ++st.released;
        held[pos] = held.back();
        held.pop_back();
      }
    }
    wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
    st.leftover = held.size();
    return st;
  };

  // Batched runner: same schedule, contiguous admit runs handed to
  // admit_batch as spans of at most `batch`, release runs to release_batch.
  // Chunk boundaries coincide with the wave boundaries of the per-call
  // replay, and admit_batch decides strictly in order, so the operation
  // order — and therefore every decision — is unchanged.
  const auto run_batched = [&](admission::AdmissionController& ctl,
                               std::size_t batch, double& wall_s) {
    FastStats st;
    std::vector<traffic::FlowId> held;
    run_prefill(ctl, held);
    std::vector<admission::AdmissionDecision> dec(batch);
    std::vector<traffic::FlowId> rel;
    rel.reserve(batch);
    const auto start = std::chrono::steady_clock::now();
    for (const FastSegment& seg : segments) {
      if (seg.admit) {
        for (std::size_t i = seg.begin; i < seg.end;) {
          const std::size_t k = std::min<std::size_t>(batch, seg.end - i);
          const std::size_t admitted = ctl.admit_batch(
              std::span<const traffic::Demand>(&schedule_demands[i], k),
              std::span<admission::AdmissionDecision>(dec.data(), k));
          if (admitted == 0) {
            st.rejected += k;
          } else {
            for (std::size_t m = 0; m < k; ++m) {
              if (dec[m].admitted()) {
                held.push_back(dec[m].flow_id);
                ++st.admitted;
              } else {
                ++st.rejected;
              }
            }
          }
          i += k;
        }
      } else {
        for (std::size_t i = seg.begin; i < seg.end;) {
          rel.clear();
          while (i < seg.end && rel.size() < batch) {
            if (!held.empty()) {
              const auto pos =
                  static_cast<std::size_t>(schedule[i].pick % held.size());
              rel.push_back(held[pos]);
              held[pos] = held.back();
              held.pop_back();
            }
            ++i;
          }
          st.released += ctl.release_batch(rel);
        }
      }
    }
    wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
    st.leftover = held.size();
    return st;
  };

  std::printf("\nInteger fast path vs double oracle (single thread, saturated "
              "schedule, %zu timed ops after prefill):\n",
              schedule.size());
  util::TextTable fast_out({"path", "batch", "wall s", "decisions/s",
                            "admits/s", "speedup", "admitted", "released",
                            "leftover"});
  std::vector<std::vector<std::string>> fast_rows;
  double baseline_dps = 0.0;
  std::size_t baseline_admitted = 0;

  struct FastRow {
    const char* path;
    std::size_t batch;
  };
  for (const FastRow row : {FastRow{"double", 1}, FastRow{"integer", 8},
                            FastRow{"integer", 16}, FastRow{"integer", 64}}) {
    const bool integer = row.path[0] == 'i';
    FastStats st;
    double wall_s = 0.0;
    if (integer) {
      admission::AdmissionController ctl(graph, classes, table);
      admission::ControllerTelemetry ctl_telemetry(registry, "fastpath",
                                                   &tracer);
      if (instrumented) ctl.attach_telemetry(&ctl_telemetry);
      st = row.batch == 1 ? run_single(ctl, wall_s)
                          : run_batched(ctl, row.batch, wall_s);
    } else {
      admission::SequentialAdmissionController ctl(graph, classes, table);
      admission::ControllerTelemetry ctl_telemetry(registry, "oracle",
                                                   &tracer);
      if (instrumented) ctl.attach_telemetry(&ctl_telemetry);
      st = run_single(ctl, wall_s);
    }
    const double ops_n = static_cast<double>(schedule.size());
    const double dps = ops_n / wall_s;
    if (!integer) {
      baseline_dps = dps;
      baseline_admitted = st.admitted;
    } else if (st.admitted != baseline_admitted) {
      std::printf("WARNING: integer path admitted %zu flows vs oracle %zu "
                  "— fixed-point decisions diverged\n",
                  st.admitted, baseline_admitted);
    }
    const double speedup = baseline_dps > 0.0 ? dps / baseline_dps : 0.0;
    fast_rows.push_back(
        {row.path, std::to_string(row.batch),
         util::TextTable::fmt(wall_s, 3), util::TextTable::fmt(dps, 0),
         util::TextTable::fmt(static_cast<double>(st.admitted) / wall_s, 0),
         util::TextTable::fmt(speedup, 2), std::to_string(st.admitted),
         std::to_string(st.released), std::to_string(st.leftover)});
    fast_out.add_row(fast_rows.back());

    summaries.emplace_back("concurrent_admission");
    summaries.back()
        .set("path", std::string(row.path))
        .set("batch", static_cast<std::uint64_t>(row.batch))
        .set("threads", static_cast<std::uint64_t>(1))
        .set("ops", static_cast<std::uint64_t>(schedule.size()))
        .set("wall_s", wall_s, 6)
        .set("decisions_per_s", dps, 0)
        .set("admits_per_s", static_cast<double>(st.admitted) / wall_s, 0)
        .set("speedup", speedup, 3)
        .set("admitted", static_cast<std::uint64_t>(st.admitted))
        .set("util_rejected", static_cast<std::uint64_t>(st.rejected))
        .set("released", static_cast<std::uint64_t>(st.released))
        .set("leftover_flows", static_cast<std::uint64_t>(st.leftover))
        .set("telemetry", instrumented ? "on" : "off");
  }
  bench::emit(fast_out,
              {"path", "batch", "wall_s", "decisions_per_s", "admits_per_s",
               "speedup", "admitted", "released", "leftover"},
              fast_rows, "concurrent_admission_fastpath");

  for (const auto& s : summaries) std::printf("%s\n", s.line().c_str());

  if (args.get_bool("json", false) || args.has("json-out")) {
    const std::string path =
        args.get("json-out", "BENCH_concurrent_admission.json");
    bench::write_summary_json(path, "concurrent_admission", summaries);
  }
  if (!metrics_out.empty())
    bench::export_metrics(registry.snapshot(), metrics_out);
  if (serving) {
    std::printf("scrape endpoint: %llu requests served\n",
                static_cast<unsigned long long>(endpoint->requests_served()));
    endpoint->stop();
    sampler->stop();
  }
  return 0;
}
