// Extension figure A: maximum safe utilization vs end-to-end deadline.
// Sweeps D from 25 ms to 400 ms in the Table 1 setup and reports all four
// columns per point — showing how the SP/heuristic gap and the Theorem 4
// envelope evolve with deadline tightness.

#include "bench_common.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);

  bench::print_header(
      "Fig. A (extension): max utilization vs deadline D",
      "Table 1 setup with D swept; T=640 bits, rho=32 kb/s.");

  util::TextTable table(
      {"D [ms]", "Lower Bound", "SP", "Our Heuristics", "Upper Bound"});
  std::vector<std::vector<std::string>> rows;
  for (const double d_ms : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    const Seconds d = units::milliseconds(d_ms);
    const auto sp = routing::maximize_utilization_shortest_path(
        graph, scenario.bucket, d, demands);
    const auto heuristic = routing::maximize_utilization_heuristic(
        graph, scenario.bucket, d, demands);
    rows.push_back({util::TextTable::fmt(d_ms, 0),
                    util::TextTable::fmt(sp.theorem4_lower, 3),
                    util::TextTable::fmt(sp.max_alpha, 3),
                    util::TextTable::fmt(heuristic.max_alpha, 3),
                    util::TextTable::fmt(sp.theorem4_upper, 3)});
    table.add_row(rows.back());
  }
  bench::emit(table,
              {"deadline_ms", "lower_bound", "sp", "heuristic", "upper_bound"},
              rows, "sweep_deadline");
  return 0;
}
