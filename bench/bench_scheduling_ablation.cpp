// Extension figure J: why class-based static priority matters.
// The paper's forwarding module (Section 4, item 3) serves classes by
// static priority. This bench replays the same verified voice workload
// plus heavy best-effort data under (a) static priority and (b) a
// class-blind FIFO, and compares worst-case voice delays against the
// configured deadline. FIFO lets data bursts queue ahead of voice and
// destroys the guarantee; static priority confines the impact to one
// packet of non-preemption per hop.

#include "bench_common.hpp"
#include "sim/network_sim.hpp"
#include "traffic/service_class.hpp"

using namespace ubac;

int main() {
  bench::print_header(
      "Fig. J (extension): static priority vs class-blind FIFO",
      "Line 0-1-2 (100 Mb/s); 400 greedy voice flows (alpha=0.30 worth)\n"
      "plus 8 best-effort data flows (12 kb packets, 90 Mb/s aggregate);\n"
      "worst voice end-to-end delay, 1 s simulated.");

  const auto topo = net::line(3);
  const net::ServerGraph graph(topo, 6u);
  const traffic::LeakyBucket voice(640.0, units::kbps(32));
  const Seconds deadline = units::milliseconds(100);

  traffic::ClassSet classes;
  classes.add(traffic::ServiceClass("voice", voice, deadline, 0.30));
  classes.add(traffic::ServiceClass("data",
                                    traffic::LeakyBucket(1e6, units::mbps(12)),
                                    0.0, 0.0, false));

  util::TextTable table({"scheduler", "voice packets", "worst voice e2e",
                         "p99.9 voice e2e", "deadline", "verdict"});
  std::vector<std::vector<std::string>> rows;
  for (const auto policy : {sim::SchedulingPolicy::kStaticPriority,
                            sim::SchedulingPolicy::kDeficitRoundRobin,
                            sim::SchedulingPolicy::kFifo}) {
    sim::NetworkSim netsim(graph, classes, policy);
    for (int f = 0; f < 400; ++f) {
      sim::SourceConfig src;
      src.model = sim::SourceModel::kGreedy;
      src.packet_size = 640.0;
      src.stop = sim::to_sim_time(1.0);
      netsim.add_flow(graph.map_path({0, 1, 2}), 0, src);
    }
    for (int f = 0; f < 8; ++f) {
      sim::SourceConfig src;
      src.model = sim::SourceModel::kGreedy;  // saturate at the data rate
      src.packet_size = 12000.0;
      src.stop = sim::to_sim_time(1.0);
      netsim.add_flow(graph.map_path({0, 1, 2}), 1, src);
    }
    const auto results = netsim.run(2.0);
    const auto& delays = results.class_delay[0];
    const bool held = delays.max() <= deadline;
    const char* name = policy == sim::SchedulingPolicy::kStaticPriority
                           ? "static priority"
                       : policy == sim::SchedulingPolicy::kDeficitRoundRobin
                           ? "class DRR (WFQ-like)"
                           : "FIFO";
    rows.push_back(
        {name,
         std::to_string(delays.count()),
         util::TextTable::fmt_ms(delays.max()),
         util::TextTable::fmt_ms(delays.quantile(0.999)),
         util::TextTable::fmt_ms(deadline, 0),
         held ? "deadline HELD" : "deadline VIOLATED"});
    table.add_row(rows.back());
  }
  bench::emit(table,
              {"scheduler", "packets", "worst_ms", "p999_ms", "deadline_ms",
               "verdict"},
              rows, "scheduling_ablation");
  return 0;
}
