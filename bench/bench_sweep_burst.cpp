// Extension figure B: maximum safe utilization vs source burst size T.
// Burstier sources (larger leaky-bucket depth at the same rate) consume
// the delay budget faster; the sweep quantifies the effect on all four
// Table 1 columns.

#include "bench_common.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);

  bench::print_header(
      "Fig. B (extension): max utilization vs burst size T",
      "Table 1 setup with T swept; rho=32 kb/s, D=100 ms.");

  util::TextTable table(
      {"T [bits]", "Lower Bound", "SP", "Our Heuristics", "Upper Bound"});
  std::vector<std::vector<std::string>> rows;
  for (const double burst : {160.0, 320.0, 640.0, 1280.0, 2560.0, 5120.0}) {
    const traffic::LeakyBucket bucket(burst, scenario.bucket.rate);
    const auto sp = routing::maximize_utilization_shortest_path(
        graph, bucket, scenario.deadline, demands);
    const auto heuristic = routing::maximize_utilization_heuristic(
        graph, bucket, scenario.deadline, demands);
    rows.push_back({util::TextTable::fmt(burst, 0),
                    util::TextTable::fmt(sp.theorem4_lower, 3),
                    util::TextTable::fmt(sp.max_alpha, 3),
                    util::TextTable::fmt(heuristic.max_alpha, 3),
                    util::TextTable::fmt(sp.theorem4_upper, 3)});
    table.add_row(rows.back());
  }
  bench::emit(table,
              {"burst_bits", "lower_bound", "sp", "heuristic", "upper_bound"},
              rows, "sweep_burst");
  return 0;
}
