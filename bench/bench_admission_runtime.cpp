// Extension figure F1: flow-level behaviour of run-time admission control.
// Poisson flow arrivals over the configured MCI network at increasing
// offered load; reports admission probability and mean carried flows.
// This is the operating regime the paper targets: enormous numbers of
// flow-level events, each decided by a constant-cost utilization test.
//
// --metrics-out=<path> instruments the controllers and exports the merged
// telemetry snapshot (.prom/.json/.csv chosen by extension).

#include "admission/controller.hpp"
#include "admission/load_driver.hpp"
#include "admission/reduced_load.hpp"
#include "admission/telemetry.hpp"
#include "bench_common.hpp"
#include "routing/route_selection.hpp"
#include "util/cli.hpp"

using namespace ubac;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  args.describe("metrics-out",
                "instrument the controllers and export the metrics snapshot "
                "(.prom/.json/.csv chosen by extension)")
      .describe("trace-out", bench::kTraceOutHelp);
  args.validate();
  bench::ScopedBenchTracing tracing(args);
  const std::string metrics_out = args.get("metrics-out", "");
  telemetry::MetricsRegistry registry;
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);

  // Configuration at a safe utilization (the Table 1 heuristic region).
  const double alpha = 0.40;
  const auto selection = routing::select_routes_heuristic(
      graph, alpha, scenario.bucket, scenario.deadline, demands);
  if (!selection.success) {
    std::fprintf(stderr, "configuration failed at alpha=%.2f\n", alpha);
    return 1;
  }
  const auto classes =
      traffic::ClassSet::two_class(scenario.bucket, scenario.deadline, alpha);
  const admission::RoutingTable table(demands, selection.server_routes);

  bench::print_header(
      "Fig. F1 (extension): admission probability vs offered load",
      "MCI backbone configured at alpha=0.40 (heuristic routes); Poisson\n"
      "flow arrivals, exponential holding (mean 90 s), 2 simulated hours.");

  // Analytic prediction: Erlang reduced-load fixed point per offered load.
  const auto flow_limit = static_cast<std::size_t>(
      alpha * 100e6 / scenario.bucket.rate);
  auto predicted_acceptance = [&](double rate) {
    admission::ReducedLoadInput input;
    input.offered_erlangs.assign(
        demands.size(), rate * 90.0 / static_cast<double>(demands.size()));
    input.routes = selection.server_routes;
    input.circuits.assign(graph.size(), flow_limit);
    return admission::solve_reduced_load(input).overall_acceptance;
  };

  util::TextTable table_out({"arrivals/s", "offered", "admitted",
                             "admit ratio", "Erlang prediction",
                             "mean active", "peak active"});
  std::vector<std::vector<std::string>> rows;
  for (const double rate : {20.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    admission::AdmissionController controller(graph, classes, table);
    admission::ControllerTelemetry telemetry(registry, "runtime");
    if (!metrics_out.empty()) controller.attach_telemetry(&telemetry);
    admission::LoadDriverConfig cfg;
    cfg.arrival_rate = rate;
    cfg.mean_holding = 90.0;
    cfg.duration = 7200.0;
    cfg.seed = 20260704;
    const auto stats = admission::run_poisson_load(controller, demands, cfg);
    if (!metrics_out.empty())
      admission::update_utilization_gauges(registry, "runtime", controller);
    rows.push_back({util::TextTable::fmt(rate, 0),
                    std::to_string(stats.offered),
                    std::to_string(stats.admitted),
                    util::TextTable::fmt(stats.admit_ratio(), 3),
                    util::TextTable::fmt(predicted_acceptance(rate), 3),
                    util::TextTable::fmt(stats.mean_active, 0),
                    std::to_string(stats.peak_active)});
    table_out.add_row(rows.back());
  }
  bench::emit(table_out,
              {"arrival_rate", "offered", "admitted", "admit_ratio",
               "erlang_prediction", "mean_active", "peak_active"},
              rows, "admission_runtime");
  if (!metrics_out.empty())
    bench::export_metrics(registry.snapshot(), metrics_out);
  return 0;
}
