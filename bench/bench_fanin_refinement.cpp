// Extension figure I: the fan-in model ablation. The paper assumes a
// uniform N (= max router in-degree) for every server; per-router fan-in
// (actual in-degree + one host ingress) is strictly tighter wherever a
// router has fewer inputs, which lowers the beta factor and raises the
// achievable utilization. This bench quantifies how much the uniform-N
// convention costs on each topology.

#include "bench_common.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

namespace {

double max_alpha(const net::ServerGraph& graph,
                 const bench::VoipScenario& scenario,
                 const std::vector<traffic::Demand>& demands) {
  const auto result = routing::maximize_utilization_heuristic(
      graph, scenario.bucket, scenario.deadline, demands);
  return result.max_alpha;
}

}  // namespace

int main() {
  const bench::VoipScenario scenario;
  bench::print_header(
      "Fig. I (extension): uniform-N (paper) vs per-router fan-in",
      "Heuristic max utilization; per-router N = in-degree + 1 host link.");

  struct Entry {
    std::string name;
    net::Topology topo;
  };
  std::vector<Entry> entries;
  entries.push_back({"mci(19)", net::mci_backbone()});
  entries.push_back({"grid(4x4)", net::grid(4, 4)});
  entries.push_back({"tree(2,3)", net::balanced_tree(2, 3)});
  entries.push_back({"random(16)", net::random_connected(16, 3.5, 12345)});

  util::TextTable table(
      {"topology", "uniform-N alpha*", "per-router alpha*", "gain"});
  std::vector<std::vector<std::string>> rows;
  for (const auto& entry : entries) {
    const auto demands = traffic::all_ordered_pairs(entry.topo);
    const net::ServerGraph uniform(entry.topo);
    const net::ServerGraph refined(entry.topo, net::FanInMode::kPerRouter);
    const double a_uniform = max_alpha(uniform, scenario, demands);
    const double a_refined = max_alpha(refined, scenario, demands);
    rows.push_back({entry.name, util::TextTable::fmt(a_uniform, 3),
                    util::TextTable::fmt(a_refined, 3),
                    util::TextTable::fmt_percent(
                        a_uniform > 0.0 ? a_refined / a_uniform - 1.0 : 0.0,
                        1)});
    table.add_row(rows.back());
  }
  bench::emit(table, {"topology", "uniform_alpha", "per_router_alpha", "gain"},
              rows, "fanin_refinement");
  return 0;
}
