#pragma once

/// \file bench_common.hpp
/// \brief Shared scenario setup and reporting for the bench binaries.
///
/// Every bench reproduces one table or figure (see DESIGN.md's experiment
/// index) and prints paper-style rows; when UBAC_BENCH_CSV is set the same
/// rows are mirrored to CSV files in that directory.

#include <cstdio>
#include <string>
#include <vector>

#include "net/server_graph.hpp"
#include "net/topology_factory.hpp"
#include "traffic/leaky_bucket.hpp"
#include "traffic/workload.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace ubac::bench {

/// The paper's Section 6 voice-over-IP scenario.
struct VoipScenario {
  traffic::LeakyBucket bucket{640.0, units::kbps(32)};  // T, rho
  Seconds deadline = units::milliseconds(100);          // D
  double fan_in = 6.0;                                  // N (MCI)
  int diameter = 4;                                     // L (MCI)
};

inline void print_header(const std::string& title, const std::string& setup) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), setup.c_str());
}

/// Print the table and optionally mirror it to $UBAC_BENCH_CSV/<name>.csv.
inline void emit(const util::TextTable& table,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows,
                 const std::string& csv_name) {
  std::fputs(table.render().c_str(), stdout);
  if (util::CsvWriter::enabled_by_env()) {
    util::CsvWriter csv(util::CsvWriter::output_dir() + "/" + csv_name +
                        ".csv");
    csv.write_row(headers);
    for (const auto& row : rows) csv.write_row(row);
    std::printf("[csv written to %s/%s.csv]\n",
                util::CsvWriter::output_dir().c_str(), csv_name.c_str());
  }
}

}  // namespace ubac::bench
