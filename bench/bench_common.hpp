#pragma once

/// \file bench_common.hpp
/// \brief Shared scenario setup and reporting for the bench binaries.
///
/// Every bench reproduces one table or figure (see DESIGN.md's experiment
/// index) and prints paper-style rows; when UBAC_BENCH_CSV is set the same
/// rows are mirrored to CSV files in that directory.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/server_graph.hpp"
#include "net/topology_factory.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "traffic/leaky_bucket.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace ubac::bench {

/// The paper's Section 6 voice-over-IP scenario.
struct VoipScenario {
  traffic::LeakyBucket bucket{640.0, units::kbps(32)};  // T, rho
  Seconds deadline = units::milliseconds(100);          // D
  double fan_in = 6.0;                                  // N (MCI)
  int diameter = 4;                                     // L (MCI)
};

inline void print_header(const std::string& title, const std::string& setup) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), setup.c_str());
}

/// Span tracing for one bench invocation, gated on --trace-out=<file>:
/// construct after ArgParser::validate(); the Chrome trace-event JSON
/// (Perfetto-loadable) is written when the object goes out of scope.
/// Callers must have described the flag:
///   args.describe("trace-out", bench::kTraceOutHelp);
/// With the flag absent, the recorder is never installed, so instrumented
/// code pays only a relaxed atomic load per span site.
inline constexpr const char* kTraceOutHelp =
    "write a Chrome trace-event / Perfetto JSON span timeline here";

class ScopedBenchTracing {
 public:
  explicit ScopedBenchTracing(const util::ArgParser& args)
      : path_(args.get("trace-out", "")) {
    if (path_.empty()) return;
    recorder_ = std::make_unique<telemetry::SpanRecorder>(1u << 15);
    telemetry::SpanRecorder::install(recorder_.get());
  }
  ~ScopedBenchTracing() {
    if (recorder_ == nullptr) return;
    telemetry::ChromeTraceWriter writer;
    writer.add_spans(*recorder_, /*pid=*/1, "bench");
    writer.write(path_);
    std::printf("[span trace written to %s]\n", path_.c_str());
  }

  ScopedBenchTracing(const ScopedBenchTracing&) = delete;
  ScopedBenchTracing& operator=(const ScopedBenchTracing&) = delete;

 private:
  std::string path_;
  std::unique_ptr<telemetry::SpanRecorder> recorder_;
};

/// Print the table and optionally mirror it to $UBAC_BENCH_CSV/<name>.csv.
inline void emit(const util::TextTable& table,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows,
                 const std::string& csv_name) {
  std::fputs(table.render().c_str(), stdout);
  if (util::CsvWriter::enabled_by_env()) {
    util::CsvWriter csv(util::CsvWriter::output_dir() + "/" + csv_name +
                        ".csv");
    csv.write_row(headers);
    for (const auto& row : rows) csv.write_row(row);
    std::printf("[csv written to %s/%s.csv]\n",
                util::CsvWriter::output_dir().c_str(), csv_name.c_str());
  }
}

/// One machine-readable result row. Renders as the stable one-line format
///
///   BENCH <name> key=value key=value ...
///
/// (fields in insertion order, no spaces inside a field) and as a JSON
/// object for `--json` output. Scripts should key on the `BENCH <name> `
/// prefix; fields may be appended over time but never renamed or removed.
class BenchSummary {
 public:
  explicit BenchSummary(std::string bench) : bench_(std::move(bench)) {}

  BenchSummary& set(const std::string& key, const std::string& value) {
    fields_.push_back({key, value, /*numeric=*/false});
    return *this;
  }
  BenchSummary& set(const std::string& key, double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    fields_.push_back({key, buf, /*numeric=*/true});
    return *this;
  }
  BenchSummary& set(const std::string& key, std::uint64_t value) {
    fields_.push_back({key, std::to_string(value), /*numeric=*/true});
    return *this;
  }

  const std::string& bench() const { return bench_; }

  std::string line() const {
    std::string out = "BENCH " + bench_;
    for (const auto& f : fields_) out += " " + f.key + "=" + f.value;
    return out;
  }

  std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + fields_[i].key + "\": ";
      out += fields_[i].numeric ? fields_[i].value
                                : "\"" + fields_[i].value + "\"";
    }
    return out + "}";
  }

 private:
  struct Field {
    std::string key;
    std::string value;
    bool numeric;
  };
  std::string bench_;
  std::vector<Field> fields_;
};

/// Write `{"bench": <name>, "rows": [...]}` for a set of summary rows.
inline void write_summary_json(const std::string& path,
                               const std::string& bench,
                               const std::vector<BenchSummary>& rows) {
  std::string out = "{\n  \"bench\": \"" + bench + "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "    " + rows[i].to_json();
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  telemetry::write_file(path, out);
  std::printf("[json written to %s]\n", path.c_str());
}

/// Export a metrics snapshot choosing the format from the file extension:
/// .json -> JSON, .csv -> CSV, anything else -> Prometheus text.
inline void export_metrics(const telemetry::MetricsSnapshot& snapshot,
                           const std::string& path) {
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".json") {
    telemetry::write_file(path, telemetry::to_json(snapshot));
  } else if (ext == ".csv") {
    util::CsvWriter csv(path);
    telemetry::write_csv(snapshot, csv);
  } else {
    telemetry::write_file(path, telemetry::to_prometheus(snapshot));
  }
  std::printf("[metrics written to %s]\n", path.c_str());
}

}  // namespace ubac::bench
