// Extension figure L: single-link failure drill. For the Table 1
// configuration (heuristic routes at a safe utilization), fail every
// duplex link in turn and attempt to reroute the affected demands at the
// same alpha (pinning survivors). Reports how many failures the
// configuration absorbs without renegotiating alpha and how the worst
// delay bound degrades — the operational robustness story of
// configuration-time admission control.

#include <algorithm>
#include <set>

#include "bench_common.hpp"
#include "config/configurator.hpp"
#include "util/stats.hpp"

using namespace ubac;

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);
  const config::Configurator configurator(graph, scenario.bucket,
                                          scenario.deadline);

  // Configure at a comfortably safe utilization (below the maximum, as an
  // operator would).
  const double alpha = 0.40;
  const auto base = configurator.select_routes(alpha, demands);
  if (!base.success) {
    std::fprintf(stderr, "base configuration failed\n");
    return 1;
  }

  bench::print_header(
      "Fig. L (extension): single-link failure drill",
      "MCI at alpha=0.40 (heuristic routes); every duplex link failed in\n"
      "turn; affected demands rerouted at the same alpha with survivors\n"
      "pinned. 'absorbed' = all demands still safely routed.");

  // Enumerate duplex links once (both directions fail together).
  std::set<std::pair<net::NodeId, net::NodeId>> seen;
  std::size_t absorbed = 0, failed_drills = 0;
  util::OnlineStats rerouted_demands;
  util::OnlineStats worst_bound_ms;
  std::vector<std::string> unabsorbed;
  const auto base_servers = base.config.server_routes(graph);

  for (net::LinkId id = 0; id < topo.link_count(); ++id) {
    const auto& link = topo.link(id);
    const auto key = std::minmax(link.from, link.to);
    if (!seen.insert(key).second) continue;

    std::vector<net::ServerId> dead{graph.server_for_link(id)};
    if (const auto reverse = topo.find_link(link.to, link.from))
      dead.push_back(graph.server_for_link(*reverse));

    // Demands whose route crosses the failed link.
    std::size_t affected = 0;
    for (const auto& route : base_servers)
      for (const net::ServerId s : route)
        if (s == dead[0] || (dead.size() > 1 && s == dead[1])) {
          ++affected;
          break;
        }

    const auto healed = configurator.reroute_avoiding(base.config, dead);
    if (healed.success) {
      ++absorbed;
      rerouted_demands.add(static_cast<double>(affected));
      worst_bound_ms.add(units::to_ms(healed.report.worst_route_delay));
    } else {
      ++failed_drills;
      unabsorbed.push_back(topo.node_name(link.from) + "<->" +
                           topo.node_name(link.to));
    }
  }

  util::TextTable table({"metric", "value"}, {util::Align::kLeft,
                                              util::Align::kRight});
  std::vector<std::vector<std::string>> rows;
  auto add = [&](const std::string& k, const std::string& v) {
    rows.push_back({k, v});
    table.add_row(rows.back());
  };
  add("duplex links drilled", std::to_string(absorbed + failed_drills));
  add("failures absorbed at same alpha", std::to_string(absorbed));
  add("failures needing renegotiation", std::to_string(failed_drills));
  add("mean demands rerouted per failure",
      util::TextTable::fmt(rerouted_demands.mean(), 1));
  add("max demands rerouted", util::TextTable::fmt(rerouted_demands.max(), 0));
  add("baseline worst bound",
      util::TextTable::fmt_ms(base.report.worst_route_delay));
  add("worst bound after any absorbed failure",
      worst_bound_ms.count() ? util::TextTable::fmt(worst_bound_ms.max(), 2) +
                                   " ms"
                             : "n/a");
  bench::emit(table, {"metric", "value"}, rows, "failure_resilience");

  if (!unabsorbed.empty()) {
    std::printf("\nlinks whose failure exceeds alpha=%.2f capacity:", alpha);
    for (const auto& name : unabsorbed) std::printf(" %s", name.c_str());
    std::printf("\n");
  }
  return 0;
}
