// Extension figure K: where the Table 1 maximum comes from. At the SP and
// heuristic maxima, rank links by route load and per-server delay bound;
// the heuristic's win shows up as a flatter load distribution over the
// same topology (fewer overloaded central links near WashingtonDC /
// Chicago / Dallas).

#include <algorithm>

#include "analysis/fixed_point.hpp"
#include "bench_common.hpp"
#include "net/metrics.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

namespace {

struct LinkRow {
  net::LinkId link;
  std::size_t load;
  Seconds delay;
};

void report(const net::Topology& topo, const char* title,
            const routing::RouteSelectionResult& selection,
            std::vector<std::vector<std::string>>& csv_rows) {
  const auto load = net::link_route_load(topo, selection.routes);
  std::vector<LinkRow> rows;
  for (net::LinkId id = 0; id < topo.link_count(); ++id)
    rows.push_back(
        {id, load[id],
         id < selection.solution.server_delay.size()
             ? selection.solution.server_delay[id]
             : 0.0});
  std::sort(rows.begin(), rows.end(), [](const LinkRow& a, const LinkRow& b) {
    if (a.load != b.load) return a.load > b.load;
    return a.delay > b.delay;
  });

  std::printf("\n%s — top loaded links:\n\n", title);
  util::TextTable table({"link", "routes", "delay bound"});
  for (std::size_t i = 0; i < 8 && i < rows.size(); ++i) {
    const auto& l = topo.link(rows[i].link);
    const std::vector<std::string> row{
        topo.node_name(l.from) + "->" + topo.node_name(l.to),
        std::to_string(rows[i].load), util::TextTable::fmt_ms(rows[i].delay)};
    table.add_row(row);
    csv_rows.push_back({title, row[0], row[1],
                        util::TextTable::fmt(rows[i].delay * 1e3, 4)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Load spread statistics.
  std::size_t max_load = 0, used = 0, total = 0;
  for (std::size_t l : load) {
    max_load = std::max(max_load, l);
    if (l) ++used;
    total += l;
  }
  std::printf("links used: %zu/%zu, max load %zu, mean load %.1f\n", used,
              load.size(), max_load,
              static_cast<double>(total) / static_cast<double>(load.size()));
}

}  // namespace

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);

  bench::print_header(
      "Fig. K (extension): bottleneck analysis at the Table 1 maxima",
      "Per-link route counts and delay bounds at each selector's maximum\n"
      "utilization; the heuristic flattens the load the SP baseline piles\n"
      "onto the backbone core.");

  // Structural context: which links the topology itself funnels.
  const auto betweenness = net::link_betweenness(topo);
  const auto max_b = std::max_element(betweenness.begin(), betweenness.end());
  const auto central =
      topo.link(static_cast<net::LinkId>(max_b - betweenness.begin()));
  std::printf("highest-betweenness link: %s->%s (%zu of %zu SP pairs)\n",
              topo.node_name(central.from).c_str(),
              topo.node_name(central.to).c_str(), *max_b, demands.size());
  std::printf("average SP path length: %.2f hops (diameter %d)\n",
              net::average_path_length(topo), 4);

  const auto sp = routing::maximize_utilization_shortest_path(
      graph, scenario.bucket, scenario.deadline, demands);
  const auto heuristic = routing::maximize_utilization_heuristic(
      graph, scenario.bucket, scenario.deadline, demands);

  std::vector<std::vector<std::string>> csv_rows;
  report(topo, "SP at its maximum", sp.best, csv_rows);
  report(topo, "heuristic at its maximum", heuristic.best, csv_rows);

  if (util::CsvWriter::enabled_by_env()) {
    util::CsvWriter csv(util::CsvWriter::output_dir() +
                        "/bottleneck_analysis.csv");
    csv.write_row({"selector", "link", "routes", "delay_ms"});
    for (const auto& row : csv_rows) csv.write_row(row);
  }
  return 0;
}
