// Extension figure E: the multi-class system of Section 5.4 / Theorem 5.
// Two real-time classes (voice + video) over the MCI backbone on
// shortest-path routes:
//   (1) per-class end-to-end delay bounds as the voice share grows, and
//   (2) the share trade-off frontier: for each voice share, the largest
//       video share that keeps both deadlines safe.

#include "analysis/multiclass.hpp"
#include "bench_common.hpp"
#include "net/shortest_path.hpp"
#include "routing/multiclass_selection.hpp"

using namespace ubac;

namespace {

traffic::ClassSet make_classes(double voice_share, double video_share) {
  traffic::ClassSet classes;
  classes.add(traffic::ServiceClass(
      "voice", traffic::LeakyBucket(640.0, units::kbps(32)),
      units::milliseconds(100), voice_share));
  classes.add(traffic::ServiceClass(
      "video", traffic::LeakyBucket(16000.0, units::mbps(1)),
      units::milliseconds(200), video_share));
  classes.add(traffic::ServiceClass("best-effort",
                                    traffic::LeakyBucket(1.0, 1.0), 0.0, 0.0,
                                    false));
  return classes;
}

}  // namespace

int main() {
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);

  // Both classes demand routes between all ordered pairs, on SP routes.
  std::vector<traffic::Demand> demands;
  std::vector<net::ServerPath> routes;
  for (net::NodeId s = 0; s < topo.node_count(); ++s)
    for (net::NodeId d = 0; d < topo.node_count(); ++d) {
      if (s == d) continue;
      const auto path = net::shortest_path(topo, s, d).value();
      for (std::size_t cls = 0; cls < 2; ++cls) {
        demands.push_back({s, d, cls});
        routes.push_back(graph.map_path(path));
      }
    }

  bench::print_header(
      "Fig. E (extension): two real-time classes (Theorem 5)",
      "MCI backbone, SP routes, voice (T=640b, 32 kb/s, D=100 ms, higher\n"
      "priority) + video (T=16 kb, 1 Mb/s, D=200 ms) + best effort.");

  // (1) Worst per-class end-to-end bound as voice share grows.
  util::TextTable delays({"voice share", "video share", "status",
                          "worst voice e2e", "worst video e2e"});
  std::vector<std::vector<std::string>> delay_rows;
  for (const double voice : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    const double video = 0.15;
    const auto classes = make_classes(voice, video);
    const auto sol =
        analysis::solve_multiclass(graph, classes, demands, routes);
    Seconds worst_voice = 0.0, worst_video = 0.0;
    for (std::size_t r = 0; r < demands.size(); ++r) {
      if (demands[r].class_index == 0)
        worst_voice = std::max(worst_voice, sol.route_delay[r]);
      else
        worst_video = std::max(worst_video, sol.route_delay[r]);
    }
    delay_rows.push_back({util::TextTable::fmt(voice, 2),
                          util::TextTable::fmt(video, 2),
                          analysis::to_string(sol.status),
                          util::TextTable::fmt_ms(worst_voice),
                          util::TextTable::fmt_ms(worst_video)});
    delays.add_row(delay_rows.back());
  }
  bench::emit(delays,
              {"voice_share", "video_share", "status", "voice_e2e_ms",
               "video_e2e_ms"},
              delay_rows, "multiclass_delays");

  // (2) Trade-off frontier.
  std::printf("\nShare trade-off frontier (largest safe video share):\n\n");
  util::TextTable frontier({"voice share", "max safe video share"});
  std::vector<std::vector<std::string>> frontier_rows;
  for (const double voice : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
    double best = 0.0;
    for (double video = 0.02; voice + video < 0.95; video += 0.02) {
      const auto sol = analysis::solve_multiclass(
          graph, make_classes(voice, video), demands, routes);
      if (sol.safe()) best = video;
    }
    frontier_rows.push_back(
        {util::TextTable::fmt(voice, 2), util::TextTable::fmt(best, 2)});
    frontier.add_row(frontier_rows.back());
  }
  bench::emit(frontier, {"voice_share", "max_video_share"}, frontier_rows,
              "multiclass_frontier");

  // (3) Section 5.4 algorithm variant: maximize the common share scale
  // with multi-class *heuristic* route selection (vs fixed SP routes).
  std::printf("\nShare-scale maximization (voice:video weight 1:1):\n\n");
  const std::vector<routing::ClassTemplate> templates{
      {"voice", traffic::LeakyBucket(640.0, units::kbps(32)),
       units::milliseconds(100), 1.0},
      {"video", traffic::LeakyBucket(16000.0, units::mbps(1)),
       units::milliseconds(200), 1.0},
  };
  // Subsample demands so the probe count stays bench-friendly.
  std::vector<traffic::Demand> sampled;
  for (std::size_t i = 0; i < demands.size(); i += 9)
    sampled.push_back(demands[i]);
  routing::HeuristicOptions heuristic;
  heuristic.candidates_per_pair = 2;

  // SP-routed baseline frontier: largest safe scale with fixed SP routes.
  double sp_scale = 0.0;
  for (double scale = 0.02; scale < 0.49; scale += 0.01) {
    std::vector<net::ServerPath> sp_routes;
    for (const auto& d : sampled)
      sp_routes.push_back(
          graph.map_path(net::shortest_path(topo, d.src, d.dst).value()));
    const auto sol = analysis::solve_multiclass(
        graph, routing::scaled_class_set(templates, scale), sampled,
        sp_routes);
    if (sol.safe()) sp_scale = scale;
  }
  const auto maximized = routing::maximize_share_scale(
      graph, templates, sampled, 0.49, 0.01, heuristic);

  util::TextTable scale_table({"selector", "max scale", "voice+video share"});
  std::vector<std::vector<std::string>> scale_rows;
  scale_rows.push_back({"SP routes", util::TextTable::fmt(sp_scale, 2),
                        util::TextTable::fmt(2.0 * sp_scale, 2)});
  scale_table.add_row(scale_rows.back());
  scale_rows.push_back(
      {"multiclass heuristic", util::TextTable::fmt(maximized.max_scale, 2),
       util::TextTable::fmt(2.0 * maximized.max_scale, 2)});
  scale_table.add_row(scale_rows.back());
  bench::emit(scale_table, {"selector", "max_scale", "total_share"},
              scale_rows, "multiclass_scale");
  return 0;
}
