// Performance microbenchmarks (google-benchmark) for the configuration
// machinery itself: the fixed-point verification, the Section 5.2
// heuristic, and k-shortest-path candidate generation. Configuration is
// offline in the paper, but it must stay tractable for realistic ISP
// backbones — these benches track that.

#include <benchmark/benchmark.h>

#include "analysis/fixed_point.hpp"
#include "bench_common.hpp"
#include "net/ksp.hpp"
#include "net/shortest_path.hpp"
#include "routing/route_selection.hpp"

using namespace ubac;

namespace {

struct Setup {
  net::Topology topo = net::mci_backbone();
  net::ServerGraph graph{topo, 6u};
  bench::VoipScenario scenario;
  std::vector<traffic::Demand> demands = traffic::all_ordered_pairs(topo);
  std::vector<net::ServerPath> sp_routes;

  Setup() {
    for (const auto& d : demands)
      sp_routes.push_back(
          graph.map_path(net::shortest_path(topo, d.src, d.dst).value()));
  }
};

const Setup& setup() {
  static const Setup instance;
  return instance;
}

void BM_FixedPointVerification(benchmark::State& state) {
  const Setup& s = setup();
  const std::size_t route_count =
      std::min<std::size_t>(state.range(0), s.sp_routes.size());
  const std::vector<net::ServerPath> routes(
      s.sp_routes.begin(), s.sp_routes.begin() + route_count);
  for (auto _ : state) {
    const auto sol = analysis::solve_two_class(
        s.graph, 0.30, s.scenario.bucket, s.scenario.deadline, routes);
    benchmark::DoNotOptimize(sol.status);
  }
  state.SetComplexityN(static_cast<std::int64_t>(route_count));
}

void BM_HeuristicRouteSelection(benchmark::State& state) {
  const Setup& s = setup();
  routing::HeuristicOptions opts;
  opts.candidates_per_pair = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto result = routing::select_routes_heuristic(
        s.graph, 0.40, s.scenario.bucket, s.scenario.deadline, s.demands,
        opts);
    benchmark::DoNotOptimize(result.success);
  }
}

void BM_KShortestPaths(benchmark::State& state) {
  const Setup& s = setup();
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    // Diameter pair: Boston (17) to Sacramento (1).
    const auto paths = net::k_shortest_paths(s.topo, 17, 1, k);
    benchmark::DoNotOptimize(paths.size());
  }
}

}  // namespace

BENCHMARK(BM_FixedPointVerification)
    ->Arg(16)
    ->Arg(64)
    ->Arg(342)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_HeuristicRouteSelection)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KShortestPaths)->Arg(4)->Arg(16)->Arg(64)->Unit(
    benchmark::kMicrosecond);

BENCHMARK_MAIN();
