// Performance microbenchmarks for the configuration machinery itself: the
// fixed-point verification, the Section 5.2 heuristic, k-shortest-path
// candidate generation, and the incremental AnalysisEngine probe path
// against its cold-solve oracle. Configuration is offline in the paper,
// but it must stay tractable for realistic ISP backbones — these benches
// track that.
//
// Plain harness (no google-benchmark) so the rows come out in the stable
// `BENCH <name> key=value ...` format shared by the other benches.
//
// Options:
//   --reps=N       timing repetitions per case (default 20; min is kept)
//   --threads=N    candidate-scoring threads for the heuristic rows
//                  (0 = hardware)
//   --json[=path]  also write the BENCH rows as JSON
//                  (default path BENCH_analysis_perf.json)

#include <algorithm>
#include <chrono>

#include "analysis/engine.hpp"
#include "analysis/fixed_point.hpp"
#include "bench_common.hpp"
#include "net/ksp.hpp"
#include "net/shortest_path.hpp"
#include "routing/route_selection.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace ubac;

namespace {

/// Minimum wall time of `reps` runs of fn(), in milliseconds.
template <typename Fn>
double time_min_ms(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  args.describe("reps", "timing repetitions per case (default 20)")
      .describe("threads", "candidate-scoring threads (default 0 = hardware)")
      .describe("json",
                "write BENCH rows as JSON (default BENCH_analysis_perf.json)")
      .describe("trace-out", bench::kTraceOutHelp);
  args.validate();
  bench::ScopedBenchTracing tracing(args);
  const int reps = static_cast<int>(args.get_long("reps", 20));
  util::ThreadPool pool(
      static_cast<std::size_t>(args.get_long("threads", 0)));

  const net::Topology topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const bench::VoipScenario scenario;
  const auto demands = traffic::all_ordered_pairs(topo);
  std::vector<net::ServerPath> sp_routes;
  for (const auto& d : demands)
    sp_routes.push_back(
        graph.map_path(net::shortest_path(topo, d.src, d.dst).value()));

  bench::print_header(
      "Analysis microbenchmarks",
      "MCI backbone, all-ordered-pairs voice demands; minimum wall time\n"
      "over --reps runs per case.");
  std::vector<bench::BenchSummary> summaries;
  auto report = [&](bench::BenchSummary summary) {
    std::printf("%s\n", summary.line().c_str());
    summaries.push_back(std::move(summary));
  };

  // Cold fixed-point verification vs committed-set size.
  for (const std::size_t route_count : {std::size_t{16}, std::size_t{64},
                                        sp_routes.size()}) {
    const std::vector<net::ServerPath> routes(
        sp_routes.begin(), sp_routes.begin() + route_count);
    analysis::FeasibilityStatus status{};
    const double ms = time_min_ms(reps, [&] {
      status = analysis::solve_two_class(graph, 0.30, scenario.bucket,
                                         scenario.deadline, routes)
                   .status;
    });
    bench::BenchSummary summary("analysis_perf");
    summary.set("case", "fixed_point_verify")
        .set("routes", static_cast<std::uint64_t>(route_count))
        .set("status", analysis::to_string(status))
        .set("min_ms", ms, 3);
    report(std::move(summary));
  }

  // The Section 5.2 heuristic at a fixed alpha (engine-backed).
  for (const std::size_t k : {std::size_t{2}, std::size_t{8}}) {
    routing::HeuristicOptions opts;
    opts.candidates_per_pair = k;
    opts.pool = &pool;
    bool success = false;
    const double ms = time_min_ms(reps, [&] {
      success = routing::select_routes_heuristic(graph, 0.40, scenario.bucket,
                                                 scenario.deadline, demands,
                                                 opts)
                    .success;
    });
    bench::BenchSummary summary("analysis_perf");
    summary.set("case", "heuristic_select")
        .set("k", static_cast<std::uint64_t>(k))
        .set("threads", static_cast<std::uint64_t>(pool.thread_count()))
        .set("success", success ? "yes" : "no")
        .set("min_ms", ms, 3);
    report(std::move(summary));
  }

  // k-shortest-paths candidate generation across the diameter pair
  // (Boston 17 -> Sacramento 1).
  for (const std::size_t k : {std::size_t{4}, std::size_t{16},
                              std::size_t{64}}) {
    std::size_t found = 0;
    const double ms = time_min_ms(
        reps, [&] { found = net::k_shortest_paths(topo, 17, 1, k).size(); });
    bench::BenchSummary summary("analysis_perf");
    summary.set("case", "ksp")
        .set("k", static_cast<std::uint64_t>(k))
        .set("found", static_cast<std::uint64_t>(found))
        .set("min_ms", ms, 3);
    report(std::move(summary));
  }

  // Incremental probe vs cold oracle: evaluate "committed + 1 candidate"
  // against the full committed SP set. The probe re-iterates only the
  // candidate's dirty closure warm-started from the committed delays; the
  // oracle re-solves everything from zero.
  {
    std::vector<net::ServerPath> committed(sp_routes.begin(),
                                           sp_routes.end() - 1);
    const net::ServerPath candidate = sp_routes.back();
    analysis::AnalysisEngine engine(graph, 0.30, scenario.bucket,
                                    scenario.deadline);
    for (const auto& route : committed) engine.add_route(route);
    engine.solve();

    const double warm_ms =
        time_min_ms(reps * 10, [&] { (void)engine.probe_route(candidate); });
    std::vector<net::ServerPath> all = committed;
    all.push_back(candidate);
    const double cold_ms = time_min_ms(reps, [&] {
      (void)analysis::solve_two_class(graph, 0.30, scenario.bucket,
                                      scenario.deadline, all);
    });
    bench::BenchSummary summary("analysis_perf");
    summary.set("case", "engine_probe_vs_cold")
        .set("routes", static_cast<std::uint64_t>(all.size()))
        .set("probe_min_ms", warm_ms, 4)
        .set("cold_min_ms", cold_ms, 4)
        .set("speedup", warm_ms > 0.0 ? cold_ms / warm_ms : 0.0, 1);
    report(std::move(summary));
  }

  if (args.has("json"))
    bench::write_summary_json(args.get("json", "BENCH_analysis_perf.json"),
                              "analysis_perf", summaries);
  return 0;
}
