// Reproduces Table 1 of the paper: maximum safe utilization on the MCI
// backbone for the voice-over-IP scenario — the Theorem 4 lower bound,
// shortest-path routing, the Section 5.2 heuristic, and the Theorem 4
// upper bound.
//
// Paper values: 0.30 | 0.33 | 0.45 | 0.61. Absolute SP/heuristic numbers
// depend on the exact wiring of the (raster-only) Fig. 4 map; the claims
// to reproduce are the ordering LB <= SP < heuristic <= UB, SP close to
// the lower bound, and the heuristic a large step above SP.

#include <cstdio>

#include "bench_common.hpp"
#include "routing/max_util_search.hpp"

using namespace ubac;

int main() {
  const bench::VoipScenario scenario;
  const auto topo = net::mci_backbone();
  const net::ServerGraph graph(topo, 6u);
  const auto demands = traffic::all_ordered_pairs(topo);

  bench::print_header(
      "Table 1: Maximum utilization (MCI backbone, voice-over-IP)",
      "19 routers, 39 duplex 100 Mb/s links, L=4, N=6; all ordered router\n"
      "pairs demand a route; T=640 bits, rho=32 kb/s, D=100 ms.\n"
      "Paper reports: lower bound 0.30 | SP 0.33 | heuristic 0.45 | upper "
      "bound 0.61.");

  const auto sp = routing::maximize_utilization_shortest_path(
      graph, scenario.bucket, scenario.deadline, demands);
  const auto heuristic = routing::maximize_utilization_heuristic(
      graph, scenario.bucket, scenario.deadline, demands);

  util::TextTable table({"Lower Bound", "SP", "Our Heuristics",
                         "Upper Bound"});
  const std::vector<std::string> row{
      util::TextTable::fmt(sp.theorem4_lower, 2),
      util::TextTable::fmt(sp.max_alpha, 2),
      util::TextTable::fmt(heuristic.max_alpha, 2),
      util::TextTable::fmt(sp.theorem4_upper, 2)};
  table.add_row(row);
  bench::emit(table, {"lower_bound", "sp", "heuristic", "upper_bound"}, {row},
              "table1_max_utilization");

  std::printf(
      "\nheuristic/SP improvement: %.0f%%   (paper: ~36%%)\n"
      "binary-search probes: SP %d, heuristic %d\n",
      (heuristic.max_alpha / sp.max_alpha - 1.0) * 100.0, sp.probes,
      heuristic.probes);
  return 0;
}
